"""Protocol-cost measurement tests."""

import pytest

from repro.adversaries import LockWatchingAborter, fixed
from repro.analysis import (
    FrontierPoint,
    fairness_cost_frontier,
    measure_cost,
    pareto_optimal,
)
from repro.core import STANDARD_GAMMA
from repro.functions import make_and, make_swap
from repro.protocols import (
    GordonKatzProtocol,
    NaiveContractSigning,
    Opt2SfeProtocol,
    SingleRoundProtocol,
)


class TestMeasureCost:
    def test_opt2sfe_costs(self):
        cost = measure_cost(Opt2SfeProtocol(make_swap(8)), n_runs=5, seed=1)
        assert cost.rounds == 4
        assert cost.point_to_point_messages == 2  # the two reconstructions
        assert cost.functionality_responses == 2  # one F response per party
        assert cost.total_messages == 4

    def test_naive_contract_costs(self):
        cost = measure_cost(NaiveContractSigning(), n_runs=5, seed=2)
        assert cost.rounds == 4
        assert cost.point_to_point_messages == 4  # 2 commitments + 2 openings
        assert cost.functionality_responses == 0

    def test_gk_rounds_scale_with_p(self):
        c2 = measure_cost(GordonKatzProtocol(make_and(), 2), n_runs=2, seed=3)
        c4 = measure_cost(GordonKatzProtocol(make_and(), 4), n_runs=2, seed=3)
        assert c4.rounds > c2.rounds
        assert c4.total_messages > c2.total_messages

    def test_broadcast_counted(self):
        from repro.functions import make_concat
        from repro.protocols import OptNSfeProtocol

        cost = measure_cost(OptNSfeProtocol(make_concat(3, 8)), n_runs=3, seed=4)
        assert cost.broadcasts == 3  # one per party

    def test_needs_runs(self):
        with pytest.raises(ValueError):
            measure_cost(Opt2SfeProtocol(make_swap(8)), n_runs=0)


class TestFrontier:
    def test_frontier_sorted_and_pareto(self):
        strategies = [
            fixed("l0", lambda: LockWatchingAborter({0})),
            fixed("l1", lambda: LockWatchingAborter({1})),
        ]
        swap = make_swap(8)
        points = fairness_cost_frontier(
            [
                (Opt2SfeProtocol(swap), strategies),
                (SingleRoundProtocol(swap), strategies),
            ],
            STANDARD_GAMMA,
            n_runs_utility=120,
            n_runs_cost=3,
            seed="frontier",
        )
        assert points[0].protocol_name == "opt-2sfe[swap8]"
        frontier = pareto_optimal(points)
        names = {p.protocol_name for p in frontier}
        # opt-2sfe: fairer but one more round; single-round: cheaper but
        # unfair — neither dominates the other.
        assert names == {"opt-2sfe[swap8]", "single-round[swap8]"}

    def test_pareto_removes_dominated(self):
        a = FrontierPoint("a", utility=0.5, rounds=4, total_messages=4)
        b = FrontierPoint("b", utility=0.5, rounds=6, total_messages=4)
        c = FrontierPoint("c", utility=0.9, rounds=4, total_messages=4)
        frontier = pareto_optimal([a, b, c])
        assert [p.protocol_name for p in frontier] == ["a"]

    def test_pareto_keeps_tradeoffs(self):
        a = FrontierPoint("a", utility=0.5, rounds=10, total_messages=1)
        b = FrontierPoint("b", utility=0.9, rounds=2, total_messages=1)
        assert len(pareto_optimal([a, b])) == 2
