"""MAC, commitment, signature, and OTP tests."""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    Rng,
    blind,
    blind_vector,
    commit,
    gen,
    gen_mac_key,
    gen_pad,
    open_commitment,
    sign,
    tag,
    unblind,
    ver,
    verify,
)
from repro.crypto.commitment import Opening
from repro.crypto.mac import KEY_LENGTH, MacKey, TAG_LENGTH


class TestMac:
    def setup_method(self):
        self.rng = Rng(b"mac")
        self.key = gen_mac_key(self.rng)

    def test_tag_verifies(self):
        t = tag(12345, self.key)
        assert verify(12345, t, self.key)

    def test_wrong_message_fails(self):
        t = tag(12345, self.key)
        assert not verify(12346, t, self.key)

    def test_wrong_key_fails(self):
        t = tag("hello", self.key)
        other = gen_mac_key(self.rng)
        assert not verify("hello", t, other)

    def test_tag_length(self):
        assert len(tag(b"x", self.key)) == TAG_LENGTH

    def test_message_types(self):
        for message in (b"bytes", 7, "str", (1, "two", b"3"), None, ()):
            assert verify(message, tag(message, self.key), self.key)

    def test_tuple_encoding_unambiguous(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert tag(("ab", "c"), self.key) != tag(("a", "bc"), self.key)

    def test_type_distinction(self):
        # The int 1 and the string "1" must tag differently.
        assert tag(1, self.key) != tag("1", self.key)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            tag(3.14, self.key)

    def test_malformed_key_rejected(self):
        with pytest.raises(ValueError):
            MacKey(b"short")

    def test_key_length(self):
        assert len(self.key.material) == KEY_LENGTH

    @given(st.integers(0, 2**64))
    @settings(max_examples=40)
    def test_roundtrip_property(self, message):
        assert verify(message, tag(message, self.key), self.key)


class TestCommitment:
    def setup_method(self):
        self.rng = Rng(b"com")

    def test_commit_open(self):
        com, opening = commit("contract", self.rng)
        assert open_commitment(com, opening)

    def test_binding_to_message(self):
        com, opening = commit(10, self.rng)
        forged = Opening(opening.nonce, 11)
        assert not open_commitment(com, forged)

    def test_binding_to_nonce(self):
        com, opening = commit(10, self.rng)
        forged = Opening(b"\x00" * len(opening.nonce), 10)
        assert not open_commitment(com, forged)

    def test_hiding_fresh_nonces(self):
        com1, _ = commit(10, self.rng)
        com2, _ = commit(10, self.rng)
        assert com1.digest != com2.digest

    def test_malformed_opening(self):
        com, _ = commit(10, self.rng)
        assert not open_commitment(com, "not-an-opening")
        assert not open_commitment("not-a-commitment", Opening(b"x" * 16, 10))

    def test_unencodable_message_in_opening(self):
        com, _ = commit(10, self.rng)
        assert not open_commitment(com, Opening(b"x" * 16, 3.14))

    @given(st.binary(max_size=64))
    @settings(max_examples=40)
    def test_roundtrip_property(self, message):
        rng = Rng(b"prop")
        com, opening = commit(message, rng)
        assert open_commitment(com, opening)


class TestLamportSignatures:
    def setup_method(self):
        self.rng = Rng(b"sig")
        self.sk, self.vk = gen(self.rng)

    def test_sign_verify(self):
        assert ver("message", sign("message", self.sk), self.vk)

    def test_wrong_message_fails(self):
        assert not ver("other", sign("message", self.sk), self.vk)

    def test_wrong_key_fails(self):
        _, vk2 = gen(self.rng)
        assert not ver("message", sign("message", self.sk), vk2)

    def test_non_signature_rejected(self):
        assert not ver("m", "garbage", self.vk)
        assert not ver("m", None, self.vk)

    def test_truncated_signature_rejected(self):
        sig = sign("m", self.sk)
        from repro.crypto.signature import Signature

        assert not ver("m", Signature(sig.preimages[:100]), self.vk)

    def test_tampered_preimage_rejected(self):
        sig = sign("m", self.sk)
        from repro.crypto.signature import Signature

        tampered = (b"\x00" * 32,) + sig.preimages[1:]
        assert not ver("m", Signature(tampered), self.vk)

    def test_signs_tuples(self):
        y = (1, 2, 3)
        assert ver(y, sign(y, self.sk), self.vk)

    def test_unencodable_message(self):
        sig = sign("m", self.sk)
        assert not ver(3.14, sig, self.vk)

    def test_deepcopy_is_identity(self):
        # Immutable mixin: clones share the key objects.
        assert copy.deepcopy(self.vk) is self.vk
        assert copy.deepcopy(self.sk) is self.sk


class TestOtp:
    def test_blind_unblind(self):
        rng = Rng(b"otp")
        pad = gen_pad(16, rng)
        assert unblind(blind(1234, pad, 16), pad, 16) == 1234

    def test_value_out_of_range(self):
        with pytest.raises(ValueError):
            blind(1 << 16, 0, 16)

    def test_pad_width_positive(self):
        with pytest.raises(ValueError):
            gen_pad(0, Rng(1))

    def test_blind_vector(self):
        rng = Rng(b"otp2")
        values = [1, 2, 3]
        pads = [gen_pad(8, rng) for _ in values]
        blinded = blind_vector(values, pads, 8)
        assert [unblind(c, k, 8) for c, k in zip(blinded, pads)] == values

    def test_blind_vector_length_mismatch(self):
        with pytest.raises(ValueError):
            blind_vector([1, 2], [3], 8)

    def test_perfect_blinding(self):
        """Each ciphertext value is equally likely over a random pad."""
        from collections import Counter

        rng = Rng(b"otp3")
        counts = Counter(
            blind(5, gen_pad(3, rng), 3) for _ in range(4000)
        )
        assert set(counts) == set(range(8))
        assert all(350 <= c <= 650 for c in counts.values())
