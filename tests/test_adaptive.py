"""Adaptive-corruption tests (the paper's adaptive-adversary claims)."""

import pytest

from repro.adversaries import (
    AdaptiveHolderHunter,
    LockWatchingAborter,
    TriggeredCorruption,
    fixed,
)
from repro.analysis import estimate_utility
from repro.core import FairnessEvent, STANDARD_GAMMA, classify
from repro.crypto import Rng
from repro.engine import run_execution
from repro.functions import make_concat, make_swap
from repro.protocols import OptNSfeProtocol, Opt2SfeProtocol


class TestAdaptiveHolderHunter:
    def setup_method(self):
        self.n = 4
        self.func = make_concat(self.n, 8)
        self.protocol = OptNSfeProtocol(self.func)

    def _e10_fraction(self, budget, runs=300):
        hits = 0
        for k in range(runs):
            rng = Rng(("hunt", budget, k))
            inputs = self.func.sample_inputs(rng.fork("in"))
            result = run_execution(
                self.protocol,
                inputs,
                AdaptiveHolderHunter(budget),
                rng.fork("x"),
            )
            if classify(result, self.func) is FairnessEvent.E10:
                hits += 1
        return hits / runs

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            AdaptiveHolderHunter(0)

    def test_post_hoc_adaptivity_is_worthless(self):
        """Corrupting after phase 1 gains nothing: by then the holder's
        broadcast is irrevocably out, so Pr[E10] stays at 1/n (the single
        static corruption) regardless of the adaptive budget."""
        small = self._e10_fraction(budget=1)
        large = self._e10_fraction(budget=self.n - 1)
        assert abs(small - 1 / self.n) < 0.08
        assert abs(large - 1 / self.n) < 0.08

    def test_never_exceeds_static_optimum(self):
        """Even the full-budget adaptive hunter stays below the Lemma-11
        static optimum t/n — adaptivity cannot beat up-front guessing."""
        t = self.n - 1
        adaptive = self._e10_fraction(budget=t)
        assert adaptive <= t / self.n + 0.05

    def test_hunter_still_learns_output(self):
        """Whatever happens, the hunter walks away knowing y (E10 or E11)."""
        rng = Rng("learn")
        inputs = self.func.sample_inputs(rng.fork("in"))
        result = run_execution(
            self.protocol, inputs, AdaptiveHolderHunter(3), rng.fork("x")
        )
        assert classify(result, self.func) in (
            FairnessEvent.E10,
            FairnessEvent.E11,
        )


class TestTriggeredCorruption:
    def test_triggers_once(self):
        protocol = Opt2SfeProtocol(make_swap(8))
        adversary = TriggeredCorruption({1}, lambda iface: iface.round >= 2)
        rng = Rng("trig")
        result = run_execution(protocol, (3, 9), adversary, rng)
        assert result.corrupted == {1}
        assert adversary.fired

    def test_never_fires(self):
        protocol = Opt2SfeProtocol(make_swap(8))
        adversary = TriggeredCorruption({1}, lambda iface: False)
        result = run_execution(protocol, (3, 9), adversary, Rng("never"))
        assert result.corrupted == set()
        assert classify(result, protocol.func) is FairnessEvent.E01

    def test_late_corruption_is_fair(self):
        """Corrupting after both outputs are locked in yields E11."""
        protocol = Opt2SfeProtocol(make_swap(8))
        adversary = TriggeredCorruption({0}, lambda iface: iface.round >= 3)
        result = run_execution(protocol, (3, 9), adversary, Rng("late"))
        event = classify(result, protocol.func)
        assert event in (FairnessEvent.E11, FairnessEvent.E01)
