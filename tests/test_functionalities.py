"""Ideal-functionality semantics tests."""

import pytest

from repro.crypto import Rng, signature
from repro.engine.messages import ABORT
from repro.functionalities import (
    CoinToss,
    FairSfe,
    GkShareGen,
    ObliviousTransfer,
    OtChoose,
    OtSend,
    PrivOutput,
    PrivSfeWithAbort,
    SfeRandomAbort,
    SfeWithAbort,
    ShareGenOutput,
    TwoPartyShareGen,
    decode_output,
    geometric_rounds,
    open_sealed,
    poly_domain_sharegen,
    poly_range_sharegen,
)
from repro.functionalities.base import AdversaryHandle, FunctionalityRegistry
from repro.functions import make_and, make_concat, make_swap


class ScriptedAdversary:
    """Answers functionality queries from a script, records notifications."""

    def __init__(self, ask=True, abort=False):
        self.ask = ask
        self.abort = abort
        self.notifications = []

    def on_functionality_query(self, fname, query, data):
        if query == "request-outputs?":
            return self.ask
        if query == "abort?":
            return self.abort
        return None

    def on_functionality_notify(self, fname, event, data):
        self.notifications.append((event, data))


def handle(corrupted=frozenset(), ask=True, abort=False):
    adv = ScriptedAdversary(ask, abort)
    return AdversaryHandle(adv, "F", set(corrupted)), adv


class TestRegistry:
    def test_register_and_get(self):
        registry = FunctionalityRegistry({"F_a": FairSfe(make_and())})
        assert "F_a" in registry
        assert registry.names() == ["F_a"]

    def test_duplicate_rejected(self):
        registry = FunctionalityRegistry()
        registry.register("F", FairSfe(make_and()))
        with pytest.raises(ValueError):
            registry.register("F", FairSfe(make_and()))

    def test_missing_lookup(self):
        with pytest.raises(KeyError):
            FunctionalityRegistry().get("nope")


class TestFairSfe:
    def test_honest_delivery(self):
        f = FairSfe(make_swap(8))
        h, _ = handle()
        out = f.invoke({0: 3, 1: 9}, h, Rng(1), 2)
        assert out == {0: 9, 1: 3}

    def test_adversary_abort_denies_everyone(self):
        f = FairSfe(make_swap(8))
        h, _ = handle(corrupted={0}, abort=True)
        out = f.invoke({0: 3, 1: 9}, h, Rng(1), 2)
        assert out[0] is ABORT and out[1] is ABORT

    def test_refused_participation_aborts(self):
        f = FairSfe(make_swap(8))
        h, _ = handle(corrupted={0})
        out = f.invoke({1: 9}, h, Rng(1), 2)
        assert out[1] is ABORT


class TestSfeWithAbort:
    def test_ask_then_abort(self):
        f = SfeWithAbort(make_swap(8))
        h, adv = handle(corrupted={0}, ask=True, abort=True)
        out = f.invoke({0: 3, 1: 9}, h, Rng(1), 2)
        assert out[0] == 9  # corrupted got its output
        assert out[1] is ABORT  # honest denied
        assert adv.notifications[0][0] == "corrupted-outputs"

    def test_no_ask_no_abort(self):
        f = SfeWithAbort(make_swap(8))
        h, adv = handle(corrupted={0}, ask=False, abort=False)
        out = f.invoke({0: 3, 1: 9}, h, Rng(1), 2)
        assert out == {0: 9, 1: 3}
        assert adv.notifications == []

    def test_input_substitution(self):
        f = SfeWithAbort(make_swap(8))
        h, _ = handle(corrupted={0})
        out = f.invoke({0: 77, 1: 9}, h, Rng(1), 2)
        assert out[1] == 77


class TestTwoPartyShareGen:
    def test_shares_reconstruct_output_vector(self):
        func = make_swap(8)
        f = TwoPartyShareGen(func)
        h, _ = handle()
        out = f.invoke({0: 3, 1: 9}, h, Rng(1), 2)
        assert isinstance(out[0], ShareGenOutput)
        from repro.crypto import reconstruct

        encoded = reconstruct(out[0].share, out[1].share.wire_message())
        assert decode_output(encoded) == (9, 3)
        assert out[0].first_receiver == out[1].first_receiver
        assert out[0].first_receiver in (0, 1)

    def test_first_receiver_uniform(self):
        func = make_and()
        counts = [0, 0]
        for k in range(400):
            f = TwoPartyShareGen(func)
            h, _ = handle()
            out = f.invoke({0: 1, 1: 1}, h, Rng(("fr", k)), 2)
            counts[out[0].first_receiver] += 1
        assert 150 <= counts[0] <= 250

    def test_abort_after_ask(self):
        f = TwoPartyShareGen(make_and())
        h, adv = handle(corrupted={1}, ask=True, abort=True)
        out = f.invoke({0: 1, 1: 1}, h, Rng(1), 2)
        assert isinstance(out[1], ShareGenOutput)
        assert out[0] is ABORT

    def test_non_two_party_rejected(self):
        with pytest.raises(ValueError):
            TwoPartyShareGen(make_concat(3, 4))


class TestPrivSfeWithAbort:
    def test_exactly_one_holder_with_valid_signature(self):
        func = make_concat(4, 8)
        f = PrivSfeWithAbort(func)
        h, _ = handle()
        inputs = {i: i + 1 for i in range(4)}
        out = f.invoke(inputs, h, Rng(1), 4)
        holders = [i for i in range(4) if out[i].holds_output]
        assert len(holders) == 1
        y, sigma = out[holders[0]].value
        assert y == (1, 2, 3, 4)
        assert signature.ver(y, sigma, out[0].verification_key)

    def test_signature_rejects_other_value(self):
        func = make_concat(3, 8)
        f = PrivSfeWithAbort(func)
        h, _ = handle()
        out = f.invoke({0: 1, 1: 2, 2: 3}, h, Rng(2), 3)
        holder = next(i for i in range(3) if out[i].holds_output)
        _, sigma = out[holder].value
        assert not signature.ver((9, 9, 9), sigma, out[0].verification_key)

    def test_holder_uniform(self):
        func = make_concat(3, 8)
        counts = [0, 0, 0]
        for k in range(600):
            f = PrivSfeWithAbort(func)
            h, _ = handle()
            out = f.invoke({0: 1, 1: 2, 2: 3}, h, Rng(("h", k)), 3)
            counts[next(i for i in range(3) if out[i].holds_output)] += 1
        assert all(140 <= c <= 260 for c in counts)

    def test_abort_denies_honest(self):
        func = make_concat(3, 8)
        f = PrivSfeWithAbort(func)
        h, _ = handle(corrupted={0}, ask=True, abort=True)
        out = f.invoke({0: 1, 1: 2, 2: 3}, h, Rng(3), 3)
        assert isinstance(out[0], PrivOutput)
        assert out[1] is ABORT and out[2] is ABORT


class TestGkShareGen:
    def test_parameters(self):
        sg = poly_domain_sharegen(make_and(), p=4)
        assert sg.alpha == pytest.approx(1 / 8)
        assert sg.rounds == geometric_rounds(sg.alpha)

    def test_range_variant_parameters(self):
        sg = poly_range_sharegen(make_and(), p=2)
        assert sg.alpha == pytest.approx(1 / 8)  # 1/(p^2 |Z|) = 1/(4*2)

    def test_streams_open_and_switch_at_i_star(self):
        func = make_and()
        sg = poly_domain_sharegen(func, p=2)
        h, _ = handle()
        out = sg.invoke({0: 1, 1: 1}, h, Rng(5), 2)
        i_star = sg.i_star
        assert 1 <= i_star <= sg.rounds
        # Open p1's stream from p2's outgoing tokens.
        p0, p1 = out[0], out[1]
        for j, token in enumerate(p1.outgoing_tokens):
            value = open_sealed(token, p0.incoming_pads[j], p0.mac_key, "a")
            if j >= i_star - 1:
                assert value == 1  # the real output of AND(1,1)
            else:
                assert value in (0, 1)

    def test_tampered_token_rejected(self):
        sg = poly_domain_sharegen(make_and(), p=2)
        h, _ = handle()
        out = sg.invoke({0: 1, 1: 1}, h, Rng(6), 2)
        token = out[1].outgoing_tokens[0]
        from dataclasses import replace

        bad = replace(token, ciphertext=token.ciphertext ^ 1)
        with pytest.raises(ValueError):
            open_sealed(bad, out[0].incoming_pads[0], out[0].mac_key, "a")

    def test_wrong_stream_name_rejected(self):
        sg = poly_domain_sharegen(make_and(), p=2)
        h, _ = handle()
        out = sg.invoke({0: 1, 1: 1}, h, Rng(7), 2)
        token = out[1].outgoing_tokens[0]
        with pytest.raises(ValueError):
            open_sealed(token, out[0].incoming_pads[0], out[0].mac_key, "b")

    def test_i_star_geometric(self):
        hits = 0
        trials = 800
        for k in range(trials):
            sg = poly_domain_sharegen(make_and(), p=2)
            h, _ = handle()
            sg.invoke({0: 1, 1: 1}, h, Rng(("g", k)), 2)
            if sg.i_star == 1:
                hits += 1
        # Pr[i* = 1] = alpha = 1/4.
        assert 0.18 <= hits / trials <= 0.32

    def test_refusal_aborts(self):
        sg = poly_domain_sharegen(make_and(), p=2)
        h, _ = handle(corrupted={0})
        out = sg.invoke({1: 1}, h, Rng(8), 2)
        assert out[1] is ABORT

    def test_poly_domain_requires_domains(self):
        with pytest.raises(ValueError):
            poly_domain_sharegen(make_swap(16), p=2)

    def test_poly_range_requires_range(self):
        with pytest.raises(ValueError):
            poly_range_sharegen(make_swap(16), p=2)


class TestObliviousTransfer:
    def test_transfer(self):
        ot = ObliviousTransfer(0, 1)
        h, _ = handle()
        out = ot.invoke(
            {0: OtSend(("m0", "m1")), 1: OtChoose(1)}, h, Rng(1), 2
        )
        assert out[1] == "m1"
        assert out[0] == "ot-done"

    def test_missing_input_aborts(self):
        ot = ObliviousTransfer(0, 1)
        h, _ = handle()
        out = ot.invoke({0: OtSend(("a", "b"))}, h, Rng(1), 2)
        assert out[0] is ABORT and out[1] is ABORT

    def test_bad_choice_aborts(self):
        ot = ObliviousTransfer(0, 1)
        h, _ = handle()
        out = ot.invoke({0: OtSend(("a", "b")), 1: OtChoose(5)}, h, Rng(1), 2)
        assert out[1] is ABORT

    def test_corrupted_abort(self):
        ot = ObliviousTransfer(0, 1)
        h, _ = handle(corrupted={0}, abort=True)
        out = ot.invoke({0: OtSend(("a", "b")), 1: OtChoose(0)}, h, Rng(1), 2)
        assert out[1] is ABORT

    def test_same_party_rejected(self):
        with pytest.raises(ValueError):
            ObliviousTransfer(1, 1)


class TestCoinToss:
    def test_same_bit_to_all(self):
        ct = CoinToss()
        h, _ = handle()
        out = ct.invoke({0: "go", 1: "go"}, h, Rng(1), 2)
        assert out[0] == out[1] and out[0] in (0, 1)

    def test_adversary_sees_then_aborts(self):
        ct = CoinToss()
        h, adv = handle(corrupted={0}, abort=True)
        out = ct.invoke({0: "go", 1: "go"}, h, Rng(1), 2)
        assert out[1] is ABORT
        assert adv.notifications[0][0] == "coin"


class TestSfeRandomAbort:
    def test_honest_delivery(self):
        f = SfeRandomAbort(make_and())
        h, _ = handle()
        out = f.invoke({0: 1, 1: 1}, h, Rng(1), 2)
        assert out == {0: 1, 1: 1}

    def test_abort_randomizes_honest_output(self):
        func = make_and()
        seen = set()
        for k in range(200):
            f = SfeRandomAbort(func)
            h, _ = handle(corrupted={0}, ask=True, abort=True)
            out = f.invoke({0: 1, 1: 1}, h, Rng(("ra", k)), 2)
            assert out[0] == 1  # corrupted keeps the true output
            seen.add(out[1])
        # Honest output was replaced by f(X̂, 1) = X̂ — both values occur.
        assert seen == {0, 1}

    def test_non_two_party_rejected(self):
        with pytest.raises(ValueError):
            SfeRandomAbort(make_concat(3, 4))
