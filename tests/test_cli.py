"""CLI tests (``python -m repro``)."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestParser:
    def test_gamma_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["--gamma", "0,0,2,1", "zoo"])
        assert args.gamma.gamma10 == 2.0

    def test_gamma_validation(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--gamma", "0,0,1", "zoo"])
        with pytest.raises(SystemExit):
            parser.parse_args(["--gamma", "0,0,0.5,1", "zoo"])  # not Γfair

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_zoo(self, capsys):
        out = run_cli(capsys, "zoo")
        assert "opt-2sfe" in out and "pi2-ideal-coin" in out

    def test_zoo_small_party_count_drops_multiparty(self, capsys):
        out = run_cli(capsys, "--parties", "2", "zoo")
        assert "opt-nsfe" not in out

    def test_attack(self, capsys):
        out = run_cli(capsys, "--runs", "60", "attack", "pi1")
        assert "sup utility: 1.0000" in out
        assert "E10=1.000" in out

    def test_compare(self, capsys):
        out = run_cli(capsys, "--runs", "80", "compare", "pi1", "pi2")
        assert "Fairness partial order" in out
        assert out.index("pi2-coin") < out.index("pi1-naive")

    def test_unknown_protocol(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "attack", "nonexistent")

    def test_balance(self, capsys):
        out = run_cli(
            capsys, "--runs", "80", "--parties", "3", "balance", "opt-nsfe"
        )
        assert "utility-balanced: True" in out

    def test_balance_rejects_two_party(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "balance", "pi1")

    def test_reconstruction(self, capsys):
        out = run_cli(capsys, "--runs", "60", "reconstruction", "single-round")
        assert "reconstruction rounds: 1" in out

    def test_curve(self, capsys):
        out = run_cli(
            capsys,
            "--runs", "60", "--parties", "4",
            "curve", "opt-nsfe", "gmw-threshold",
        )
        assert "t" in out
        assert "corruption budget" in out

    def test_curve_party_mismatch(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "curve", "pi1", "opt-nsfe")


class TestRuntimeFlags:
    def test_retry_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["--max-retries", "1", "--chunk-timeout", "2.5", "--stats", "zoo"]
        )
        assert args.max_retries == 1
        assert args.chunk_timeout == 2.5
        assert args.stats

    def test_stats_dump_includes_failure_counters(self, capsys):
        out = run_cli(
            capsys,
            "--runs", "30", "--stats", "--max-retries", "1",
            "attack", "dummy",
        )
        assert "sup utility" in out
        assert '"backend"' in out
        assert '"serial_replays"' in out
        assert '"failed_attempts"' in out


class TestFaultSensitivityCommand:
    def test_erosion_table_and_artifact(self, capsys, tmp_path):
        out_path = tmp_path / "curve.json"
        out = run_cli(
            capsys,
            "--runs", "20", "--seed", "clitest",
            "fault-sensitivity", "dummy",
            "--loss", "0,0.5", "--fault-seed", "t",
            "--out", str(out_path),
        )
        assert "sup utility" in out
        assert "erosion" in out
        assert "artifact written" in out
        payload = json.loads(out_path.read_text())
        assert [p["loss"] for p in payload["points"]] == [0.0, 0.5]
        assert payload["points"][1]["faults"]["channel"]["loss"] == 0.5
        assert payload["points"][0]["erosion"] == 0.0

    def test_crash_axis_parses(self, capsys):
        out = run_cli(
            capsys,
            "--runs", "20", "fault-sensitivity", "dummy",
            "--loss", "0", "--crash", "0,0.5",
        )
        assert out.count("\n") >= 4  # two grid rows + header

    def test_rate_validation(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fault-sensitivity", "dummy", "--loss", "1.5"])
        with pytest.raises(SystemExit):
            parser.parse_args(["fault-sensitivity", "dummy", "--loss", "abc"])
