"""CLI tests (``python -m repro``)."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


def run_cli_expecting(capsys, expected_code, *argv):
    """Run the CLI and assert a specific exit code (``verify`` semantics)."""
    try:
        code = main(list(argv))
    except SystemExit as exc:
        code = exc.code if isinstance(exc.code, int) else 1
    assert code == expected_code
    return capsys.readouterr()


class TestParser:
    def test_gamma_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["--gamma", "0,0,2,1", "zoo"])
        assert args.gamma.gamma10 == 2.0

    def test_gamma_validation(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--gamma", "0,0,1", "zoo"])
        with pytest.raises(SystemExit):
            parser.parse_args(["--gamma", "0,0,0.5,1", "zoo"])  # not Γfair

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_zoo(self, capsys):
        out = run_cli(capsys, "zoo")
        assert "opt-2sfe" in out and "pi2-ideal-coin" in out

    def test_zoo_small_party_count_drops_multiparty(self, capsys):
        out = run_cli(capsys, "--parties", "2", "zoo")
        assert "opt-nsfe" not in out

    def test_attack(self, capsys):
        out = run_cli(capsys, "--runs", "60", "attack", "pi1")
        assert "sup utility: 1.0000" in out
        assert "E10=1.000" in out

    def test_compare(self, capsys):
        out = run_cli(capsys, "--runs", "80", "compare", "pi1", "pi2")
        assert "Fairness partial order" in out
        assert out.index("pi2-coin") < out.index("pi1-naive")

    def test_unknown_protocol(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "attack", "nonexistent")

    def test_balance(self, capsys):
        out = run_cli(
            capsys, "--runs", "80", "--parties", "3", "balance", "opt-nsfe"
        )
        assert "utility-balanced: True" in out

    def test_balance_rejects_two_party(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "balance", "pi1")

    def test_reconstruction(self, capsys):
        out = run_cli(capsys, "--runs", "60", "reconstruction", "single-round")
        assert "reconstruction rounds: 1" in out

    def test_curve(self, capsys):
        out = run_cli(
            capsys,
            "--runs", "60", "--parties", "4",
            "curve", "opt-nsfe", "gmw-threshold",
        )
        assert "t" in out
        assert "corruption budget" in out

    def test_curve_party_mismatch(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "curve", "pi1", "opt-nsfe")


class TestRuntimeFlags:
    def test_retry_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["--max-retries", "1", "--chunk-timeout", "2.5", "--stats", "zoo"]
        )
        assert args.max_retries == 1
        assert args.chunk_timeout == 2.5
        assert args.stats

    def test_stats_dump_includes_failure_counters(self, capsys):
        out = run_cli(
            capsys,
            "--runs", "30", "--stats", "--max-retries", "1",
            "attack", "dummy",
        )
        assert "sup utility" in out
        assert '"backend"' in out
        assert '"serial_replays"' in out
        assert '"failed_attempts"' in out
        assert '"worker_deaths"' in out

    def test_workers_flag_parses(self):
        parser = build_parser()
        args = parser.parse_args(
            ["--workers", "h1:9000,h2:9001", "attack", "dummy"]
        )
        assert args.workers == "h1:9000,h2:9001"
        # Default: None (resolve_runner then consults REPRO_WORKERS).
        assert parser.parse_args(["zoo"]).workers is None

    def test_workers_flag_builds_distributed_runner(self):
        from repro.runtime import DistributedRunner, resolve_runner

        runner = resolve_runner(None, workers="h1:9000,h2:9001")
        assert isinstance(runner, DistributedRunner)
        assert runner.worker_addrs == [("h1", 9000), ("h2", 9001)]
        assert runner.jobs == 2

    def test_worker_subcommand_parses(self):
        parser = build_parser()
        args = parser.parse_args(["worker"])
        assert args.command == "worker"
        assert args.listen == "127.0.0.1:0"
        assert not args.once
        args = parser.parse_args(
            ["worker", "--listen", "0.0.0.0:9100", "--once"]
        )
        assert args.listen == "0.0.0.0:9100"
        assert args.once


class TestJournalFlags:
    def test_journal_and_resume_parse(self):
        parser = build_parser()
        args = parser.parse_args(["--journal", "ledger", "--resume", "zoo"])
        assert args.journal == "ledger"
        assert args.resume is True
        args = parser.parse_args(["zoo"])
        assert args.journal is None
        assert args.resume is False

    def test_accepted_after_verify_subcommand(self):
        parser = build_parser()
        args = parser.parse_args(
            ["verify", "--journal", "ledger", "--resume"]
        )
        assert args.journal == "ledger"
        assert args.resume is True

    def test_resume_without_directory_is_a_usage_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOURNAL_DIR", raising=False)
        monkeypatch.delenv("REPRO_RESUME", raising=False)
        with pytest.raises(SystemExit, match="REPRO_JOURNAL_DIR"):
            main(["--resume", "zoo"])

    def test_garbage_env_knobs_exit_cleanly(self, monkeypatch):
        # Satellite contract: every runtime env knob fails as a one-line
        # usage error naming itself, not a traceback from the runner.
        for var, raw in [
            ("REPRO_JOBS", "many"),
            ("REPRO_RESUME", "maybe"),
            ("REPRO_WORKERS", "host:99999"),
            ("REPRO_HEARTBEAT_S", "soon"),
        ]:
            monkeypatch.setenv(var, raw)
            with pytest.raises(SystemExit, match=var):
                main(["zoo"] if var != "REPRO_HEARTBEAT_S" else
                     ["--workers", "127.0.0.1:9", "zoo"])
            monkeypatch.delenv(var)

    def test_cli_journal_records_and_resumes(self, capsys, tmp_path):
        cold = run_cli(
            capsys,
            "--runs", "30", "--journal", str(tmp_path), "attack", "dummy",
        )
        assert (tmp_path / "records").is_dir()
        assert list((tmp_path / "records").glob("*.json"))
        warm = run_cli(
            capsys,
            "--runs", "30", "--journal", str(tmp_path), "--resume",
            "attack", "dummy",
        )
        assert warm == cold


class TestChaosCommand:
    def test_chaos_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["chaos", "--trials", "2", "--venues", "serial",
             "--trial", "serial:chunk-faults", "--process-trials"]
        )
        assert args.command == "chaos"
        assert args.trials == 2
        assert args.venues == "serial"
        assert args.trial == ["serial:chunk-faults"]
        assert args.process_trials is True

    def test_bad_trial_spec_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit, match="repro chaos"):
            main(["chaos", "--trials", "0", "--trial", "serial:warp-core"])

    def test_minimal_campaign_runs_and_writes_artifact(
        self, capsys, tmp_path, monkeypatch
    ):
        for var in ("REPRO_JOURNAL_DIR", "REPRO_RESUME", "REPRO_CACHE_DIR"):
            monkeypatch.delenv(var, raising=False)
        out_path = tmp_path / "campaign.json"
        out = run_cli(
            capsys,
            "--seed", "cli-chaos", "chaos", "--trials", "0",
            "--trial", "serial:chunk-faults",
            "--trial-runs", "24",
            "--workdir", str(tmp_path / "work"),
            "--out", str(out_path),
        )
        assert "1/1 trials ok" in out
        artifact = json.loads(out_path.read_text())
        assert artifact["ok"] is True
        assert artifact["trials"][0]["spec"]["venue"] == "serial"


class TestFaultSensitivityCommand:
    def test_erosion_table_and_artifact(self, capsys, tmp_path):
        out_path = tmp_path / "curve.json"
        out = run_cli(
            capsys,
            "--runs", "20", "--seed", "clitest",
            "fault-sensitivity", "dummy",
            "--loss", "0,0.5", "--fault-seed", "t",
            "--out", str(out_path),
        )
        assert "sup utility" in out
        assert "erosion" in out
        assert "artifact written" in out
        payload = json.loads(out_path.read_text())
        assert [p["loss"] for p in payload["points"]] == [0.0, 0.5]
        assert payload["points"][1]["faults"]["channel"]["loss"] == 0.5
        assert payload["points"][0]["erosion"] == 0.0

    def test_crash_axis_parses(self, capsys):
        out = run_cli(
            capsys,
            "--runs", "20", "fault-sensitivity", "dummy",
            "--loss", "0", "--crash", "0,0.5",
        )
        assert out.count("\n") >= 4  # two grid rows + header

    def test_rate_validation(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fault-sensitivity", "dummy", "--loss", "1.5"])
        with pytest.raises(SystemExit):
            parser.parse_args(["fault-sensitivity", "dummy", "--loss", "abc"])

    def test_artifact_round_trips_through_json(self, capsys, tmp_path):
        """The saved curve artifact re-loads with its full fault config."""
        out_path = tmp_path / "curve.json"
        run_cli(
            capsys,
            "--runs", "20", "--seed", "roundtrip",
            "fault-sensitivity", "dummy",
            "--loss", "0,0.25", "--crash", "0.1", "--fault-seed", "rt",
            "--out", str(out_path),
        )
        payload = json.loads(out_path.read_text())
        assert payload["seed"] == repr("roundtrip")
        assert payload["fault_seed"] == repr("rt")
        assert payload["n_runs"] == 20
        assert len(payload["points"]) == 2
        for point in payload["points"]:
            assert set(point) >= {
                "loss", "crash_rate", "utility", "hung_fraction",
                "best", "estimates", "faults", "erosion",
            }
            assert point["crash_rate"] == 0.1
            assert point["best"]["n_runs"] == 20
            assert point["estimates"]


class TestStatsDumpSchema:
    @staticmethod
    def _stats_dump(out):
        # The dump is the JSON array printed after the human-readable
        # output; its opening bracket sits alone on its own line.
        return json.loads(out[out.index("\n[") + 1:])

    def test_stats_json_parses_with_full_schema(self, capsys):
        out = run_cli(capsys, "--runs", "40", "--stats", "attack", "dummy")
        history = self._stats_dump(out)
        assert history, "no batches recorded"
        required = {
            "backend", "jobs", "n_tasks", "n_chunks", "requested",
            "executions", "wall_clock_s", "executions_per_sec",
            "stopped_early", "failed_attempts", "retries", "timeouts",
            "serial_replays", "cancelled_chunks", "degraded",
            "setup_s", "execute_s", "classify_s",
            "memo_hits", "memo_misses",
            "cache_hits", "cache_misses", "cache_stores", "chunks",
        }
        for stats in history:
            assert required <= set(stats)
            assert stats["backend"] in ("serial", "process-pool")
            for chunk in stats["chunks"]:
                assert set(chunk) >= {
                    "task_index", "start", "stop", "attempts", "outcome",
                    "backend", "wall_clock_s", "cache",
                }

    def test_stats_totals_match_requested_runs(self, capsys):
        out = run_cli(capsys, "--runs", "40", "--stats", "attack", "dummy")
        history = self._stats_dump(out)
        for stats in history:
            if not stats["stopped_early"]:
                assert stats["executions"] == stats["requested"]


class TestProfileCommand:
    def test_profile_output_structure(self, capsys):
        out = run_cli(capsys, "--runs", "20", "profile", "pi1")
        assert "protocol: pi1-naive" in out
        assert "function" in out and "cumtime" in out
        assert "phases: setup" in out
        assert "setup memos:" in out

    def test_profile_default_protocol_and_top(self, capsys):
        out = run_cli(capsys, "--runs", "10", "profile", "--top", "3")
        assert "opt-2sfe" in out
        # Header + up to 3 hotspot rows before the phases line.
        table = out[: out.index("phases:")]
        assert len([l for l in table.splitlines() if l.strip()]) <= 6


class TestVerifyCommand:
    def test_exit_zero_and_artifact(self, capsys, tmp_path):
        out_path = tmp_path / "verify.json"
        captured = run_cli_expecting(
            capsys, 0,
            "--seed", "cli-verify",
            "verify", "--claims", "E4,E10-rounds", "--budget", "small",
            "--json", str(out_path),
        )
        assert "ok" in captured.out
        assert "artifact written" in captured.out
        payload = json.loads(out_path.read_text())
        assert payload["exit_code"] == 0
        assert payload["summary"]["violated"] == 0
        assert payload["master_seed"] == repr("cli-verify")
        ids = [c["claim"]["claim_id"] for c in payload["checks"]]
        assert ids == ["E4-opt2sfe", "E4-single-round", "E10-rounds"]
        for check in payload["checks"]:
            assert check["verdict"] in ("ok", "within-tolerance")
            assert "seed" in check and "chunk_spans" in check

    def test_exit_two_on_unknown_claim(self, capsys):
        captured = run_cli_expecting(
            capsys, 2, "verify", "--claims", "E99", "--budget", "small"
        )
        assert "unknown claim" in captured.err

    def test_exit_two_on_bad_budget(self, capsys):
        captured = run_cli_expecting(
            capsys, 2, "verify", "--claims", "E4", "--budget", "banana"
        )
        assert "unknown budget" in captured.err

    def test_exit_one_on_violation(self, capsys, monkeypatch):
        from repro.verify import (
            BoundKind, Claim, ClaimRegistry, Measurement, TolerancePolicy,
        )
        import repro.verify.checker as checker_mod

        rigged = ClaimRegistry([
            Claim(
                claim_id="RIGGED", experiment="T", paper_ref="test",
                statement="always violated", kind=BoundKind.UPPER,
                analytic=lambda: 0.0,
                measure=lambda ctx: Measurement.exact(1.0),
                tolerance=TolerancePolicy(slack=0.0, z=0.0),
            )
        ])
        monkeypatch.setattr(checker_mod, "default_registry", lambda: rigged)
        captured = run_cli_expecting(
            capsys, 1, "verify", "--claims", "all", "--budget", "small"
        )
        assert "violated" in captured.out

    def test_jobs_accepted_after_subcommand(self, capsys):
        captured = run_cli_expecting(
            capsys, 0,
            "verify", "--claims", "E10-rounds", "--budget", "small",
            "--jobs", "2",
        )
        assert "ok" in captured.out
