"""GMW protocol tests: correctness, abort behaviour, unfairness profile."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries import (
    AbortAtRound,
    LockWatchingAborter,
    PassiveAdversary,
)
from repro.circuits import (
    and_circuit,
    majority3_circuit,
    millionaires_circuit,
    parity_circuit,
    xor_circuit,
)
from repro.core import STANDARD_GAMMA, FairnessEvent, classify
from repro.crypto import Rng
from repro.engine import run_execution
from repro.functions import make_and, make_global, make_millionaires, make_xor
from repro.gmw import GmwProtocol, ThresholdGmwProtocol, gmw_from_spec
from repro.gmw.threshold import reconstruction_threshold


class TestGmwCorrectness:
    @pytest.mark.parametrize("x", [0, 1])
    @pytest.mark.parametrize("y", [0, 1])
    def test_and(self, x, y):
        protocol = GmwProtocol(and_circuit(), [1, 1], make_and())
        result = run_execution(protocol, (x, y), PassiveAdversary(), Rng((x, y)))
        assert [r.value for r in result.outputs.values()] == [x & y] * 2

    @pytest.mark.parametrize("x", [0, 1])
    @pytest.mark.parametrize("y", [0, 1])
    def test_xor_no_and_layers(self, x, y):
        protocol = GmwProtocol(xor_circuit(), [1, 1], make_xor())
        result = run_execution(protocol, (x, y), PassiveAdversary(), Rng((x, y)))
        assert result.outputs[0].value == x ^ y

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=15, deadline=None)
    def test_millionaires(self, x, y):
        spec = make_millionaires(4)
        protocol = GmwProtocol(millionaires_circuit(4), [4, 4], spec)
        result = run_execution(protocol, (x, y), PassiveAdversary(), Rng((x, y)))
        assert result.outputs[0].value == (1 if x > y else 0)

    def test_three_party_majority(self):
        spec = make_global(
            "maj3",
            3,
            lambda v: int(sum(v) >= 2),
            ((0, 1), (0, 1), (0, 1)),
            output_bits=1,
        )
        protocol = GmwProtocol(majority3_circuit(), [1, 1, 1], spec)
        for bits in [(0, 0, 0), (1, 0, 1), (1, 1, 1), (0, 1, 0)]:
            result = run_execution(
                protocol, bits, PassiveAdversary(), Rng(bits)
            )
            assert result.outputs[0].value == int(sum(bits) >= 2)

    def test_five_party_parity(self):
        spec = make_global(
            "par5",
            5,
            lambda v: v[0] ^ v[1] ^ v[2] ^ v[3] ^ v[4],
            tuple((0, 1) for _ in range(5)),
            output_bits=1,
        )
        protocol = GmwProtocol(parity_circuit(5), [1] * 5, spec)
        bits = (1, 0, 1, 1, 0)
        result = run_execution(protocol, bits, PassiveAdversary(), Rng(4))
        assert result.outputs[0].value == 1

    def test_from_spec_compiler(self):
        protocol = gmw_from_spec(make_and(), [1, 1])
        result = run_execution(protocol, (1, 1), PassiveAdversary(), Rng(5))
        assert result.outputs[0].value == 1

    def test_mismatched_widths_rejected(self):
        with pytest.raises(ValueError):
            GmwProtocol(and_circuit(), [2, 1], make_and())


class TestGmwAdversarial:
    def setup_method(self):
        self.protocol = GmwProtocol(and_circuit(), [1, 1], make_and())

    def test_passive_corruption_is_semi_honest(self):
        result = run_execution(
            self.protocol, (1, 1), PassiveAdversary({0}), Rng(1)
        )
        assert result.outputs[1].value == 1
        assert result.adversary_claim == 1
        assert classify(result, make_and()) is FairnessEvent.E11

    def test_lock_watching_is_unfair(self):
        """GMW's output round concedes E10 to a rushing aborter."""
        result = run_execution(
            self.protocol, (1, 1), LockWatchingAborter({0}), Rng(2)
        )
        assert result.outputs[1].is_abort
        assert result.adversary_claim == 1
        assert classify(result, make_and()) is FairnessEvent.E10

    def test_early_abort_is_fairly_detected(self):
        """Aborting before the output round denies everyone."""
        result = run_execution(
            self.protocol, (1, 1), AbortAtRound({0}, 0, claim=True), Rng(3)
        )
        assert result.outputs[1].is_abort
        event = classify(result, make_and())
        assert event in (FairnessEvent.E00, FairnessEvent.E01)

    def test_garbage_input_share_aborts(self):
        from repro.engine import Adversary

        class GarbageSender(Adversary):
            def initial_corruptions(self, n):
                return {0}

            def on_round(self, iface):
                if iface.round == 0:
                    iface.send(0, 1, "not-a-share-message")

        result = run_execution(self.protocol, (1, 1), GarbageSender(), Rng(4))
        assert result.outputs[1].is_abort

    def test_ot_refusal_aborts(self):
        """A corrupted party that skips its OT calls aborts the execution."""
        result = run_execution(
            self.protocol, (1, 1), AbortAtRound({0}, 1, claim=False), Rng(5)
        )
        assert result.outputs[1].is_abort


class TestThresholdGmw:
    def test_threshold_formula(self):
        assert reconstruction_threshold(4) == 3
        assert reconstruction_threshold(5) == 3
        assert reconstruction_threshold(6) == 4
        assert reconstruction_threshold(7) == 4

    def _spec(self, n):
        from repro.functions import make_concat

        return make_concat(n, 8)

    def test_honest_execution(self):
        protocol = ThresholdGmwProtocol(self._spec(5))
        inputs = (1, 2, 3, 4, 5)
        result = run_execution(protocol, inputs, PassiveAdversary(), Rng(1))
        assert all(r.value == inputs for r in result.outputs.values())

    @pytest.mark.parametrize("n,t,expected", [
        (5, 1, FairnessEvent.E11),
        (5, 2, FairnessEvent.E11),
        (5, 3, FairnessEvent.E10),
        (5, 4, FairnessEvent.E10),
        (4, 1, FairnessEvent.E11),
        (4, 2, FairnessEvent.E10),
        (4, 3, FairnessEvent.E10),
        (6, 2, FairnessEvent.E11),
        (6, 3, FairnessEvent.E10),
    ])
    def test_lemma17_event_profile(self, n, t, expected):
        """Lemma 17: fairness flips exactly at t = ⌈n/2⌉."""
        spec = self._spec(n)
        protocol = ThresholdGmwProtocol(spec)
        inputs = tuple(range(1, n + 1))
        result = run_execution(
            protocol, inputs, LockWatchingAborter(set(range(t))), Rng((n, t))
        )
        assert classify(result, spec) is expected

    def test_forged_shares_detected(self):
        """Corrupted parties broadcasting garbage cannot corrupt the
        reconstructed value for honest parties (VSS verifiability)."""
        from repro.engine import Adversary

        n = 5
        spec = self._spec(n)
        protocol = ThresholdGmwProtocol(spec)

        class ShareForger(Adversary):
            def initial_corruptions(self, n):
                return {0}

            def on_round(self, iface):
                if iface.round == 0:
                    iface.call_functionality(0, "F_vss_sfe", 1)
                if iface.round == 1:
                    iface.broadcast(0, ("vss-share", "garbage"))

        inputs = (1, 2, 3, 4, 5)
        result = run_execution(protocol, inputs, ShareForger(), Rng(6))
        for i in range(1, n):
            assert result.outputs[i].value == inputs
