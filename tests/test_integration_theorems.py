"""Integration tests: every headline quantitative claim of the paper,
measured end to end at moderate Monte-Carlo budgets (the benchmarks repeat
these at higher budgets and over parameter sweeps)."""

import pytest

from repro.adversaries import (
    AdversaryFactory,
    LockWatchingAborter,
    RandomSingleCorruption,
    SignalDeviator,
    fixed,
)
from repro.analysis import (
    assess_protocol,
    balance_profile,
    build_order,
    estimate_utility,
    u_coin_contract,
    u_naive_contract,
    u_opt_2sfe,
    u_opt_nsfe,
)
from repro.core import (
    STANDARD_GAMMA,
    balanced_sum_bound,
    check_ideal_fairness,
    is_utility_balanced,
    monte_carlo_tolerance,
    optimal_cost_from_profile,
    per_t_bound,
)
from repro.functions import make_concat, make_swap
from repro.gmw import ThresholdGmwProtocol
from repro.protocols import (
    CoinOrderedContractSigning,
    NaiveContractSigning,
    Opt2SfeProtocol,
    OptNSfeProtocol,
    SingleRoundProtocol,
    UnbalancedOptProtocol,
)

RUNS = 500
TOL = monte_carlo_tolerance(RUNS) + 0.02


def lock_watch_space(n):
    from repro.adversaries import corruption_sets

    return [
        fixed(f"lw{sorted(s)}", lambda s=s: LockWatchingAborter(set(s)))
        for s in corruption_sets(n)
    ]


class TestIntroExample:
    """§1: Π2 is twice as fair as Π1."""

    def test_relative_fairness(self):
        strategies = lock_watch_space(2)
        pi1 = assess_protocol(
            NaiveContractSigning(), strategies, STANDARD_GAMMA, RUNS, seed=1
        )
        pi2 = assess_protocol(
            CoinOrderedContractSigning(), strategies, STANDARD_GAMMA, RUNS, seed=1
        )
        assert pi1.utility == pytest.approx(u_naive_contract(STANDARD_GAMMA), abs=TOL)
        assert pi2.utility == pytest.approx(u_coin_contract(STANDARD_GAMMA), abs=TOL)
        order = build_order([pi1, pi2], tolerance=TOL)
        assert order.strictly_fairer("pi2-coin", "pi1-naive")


class TestTheorem3And4:
    """The two-party optimum (γ10+γ11)/2, attained and unimprovable."""

    def test_upper_bound_over_strategy_space(self):
        protocol = Opt2SfeProtocol(make_swap(16))
        from repro.adversaries import strategy_space_for_protocol

        assessment = assess_protocol(
            protocol,
            strategy_space_for_protocol(protocol),
            STANDARD_GAMMA,
            200,
            seed=2,
        )
        bound = u_opt_2sfe(STANDARD_GAMMA)
        assert assessment.utility <= bound + monte_carlo_tolerance(200) + 0.02

    def test_lower_bound_agen(self):
        protocol = Opt2SfeProtocol(make_swap(16))
        agen = AdversaryFactory(
            "a-gen", lambda rng: RandomSingleCorruption(2, rng)
        )
        est = estimate_utility(protocol, agen, STANDARD_GAMMA, RUNS, seed=3)
        assert est.mean >= u_opt_2sfe(STANDARD_GAMMA) - TOL

    def test_optimality_within_protocol_universe(self):
        strategies = lock_watch_space(2)
        swap = make_swap(16)
        assessments = [
            assess_protocol(p, strategies, STANDARD_GAMMA, RUNS, seed=4)
            for p in (
                Opt2SfeProtocol(swap),
                SingleRoundProtocol(swap),
            )
        ]
        order = build_order(assessments, tolerance=TOL)
        assert order.maximal_elements() == [f"opt-2sfe[{swap.name}]"]


class TestLemma11And13:
    """Multi-party per-t optimum (t·γ10 + (n−t)·γ11)/n."""

    @pytest.mark.parametrize("n", [3, 5])
    def test_per_t_utilities(self, n):
        protocol = OptNSfeProtocol(make_concat(n, 8))
        for t in range(1, n):
            factory = fixed(
                f"lw{t}", lambda t=t: LockWatchingAborter(set(range(t)))
            )
            est = estimate_utility(protocol, factory, STANDARD_GAMMA, RUNS, seed=(5, t))
            assert est.mean == pytest.approx(
                u_opt_nsfe(STANDARD_GAMMA, n, t), abs=TOL
            )


class TestLemma14To17:
    """Utility balance: ΠOptnSFE attains the sum bound; Π½GMW (even n)
    overshoots."""

    def _profile(self, protocol, n, runs=300):
        factories_per_t = {
            t: [fixed(f"lw{t}", lambda t=t: LockWatchingAborter(set(range(t))))]
            for t in range(1, n)
        }
        return balance_profile(
            protocol, factories_per_t, STANDARD_GAMMA, n_runs=runs, seed=6
        )

    def test_opt_nsfe_is_balanced(self):
        n = 4
        profile = self._profile(OptNSfeProtocol(make_concat(n, 8)), n)
        bound = balanced_sum_bound(n, STANDARD_GAMMA)
        assert profile.utility_sum == pytest.approx(bound, abs=(n - 1) * TOL)
        assert is_utility_balanced(profile, tol=(n - 1) * TOL)

    def test_threshold_gmw_even_n_not_balanced(self):
        n = 4
        profile = self._profile(ThresholdGmwProtocol(make_concat(n, 8)), n)
        excess = (STANDARD_GAMMA.gamma10 - STANDARD_GAMMA.gamma11) / 2
        bound = balanced_sum_bound(n, STANDARD_GAMMA)
        assert profile.utility_sum == pytest.approx(bound + excess, abs=(n - 1) * TOL)
        # The Lemma-17 event profile is deterministic in t, so a small
        # tolerance suffices to certify the strict overshoot.
        assert profile.exceeds_balance_bound(tol=excess / 2)

    def test_threshold_gmw_odd_n_meets_bound(self):
        n = 5
        profile = self._profile(ThresholdGmwProtocol(make_concat(n, 8)), n)
        bound = balanced_sum_bound(n, STANDARD_GAMMA)
        assert profile.utility_sum == pytest.approx(bound, abs=(n - 1) * TOL)


class TestLemma18:
    """Optimal fairness does not imply utility balance."""

    def test_unbalanced_exceeds_sum_bound(self):
        n = 4
        protocol = UnbalancedOptProtocol(make_concat(n, 8))
        factories_per_t = {
            t: [
                fixed(f"lw{t}", lambda t=t: LockWatchingAborter(set(range(t)))),
                fixed(f"sd{t}", lambda t=t: SignalDeviator(set(range(t)))),
            ]
            for t in range(1, n)
        }
        profile = balance_profile(
            protocol, factories_per_t, STANDARD_GAMMA, n_runs=400, seed=7
        )
        assert profile.exceeds_balance_bound(
            tol=(n - 1) * monte_carlo_tolerance(400)
        )

    def test_but_optimal_at_n_minus_1(self):
        """The (n−1)-adversary still tops out at ΠOptnSFE's level, so the
        protocol remains optimally fair."""
        n = 4
        protocol = UnbalancedOptProtocol(make_concat(n, 8))
        best = max(
            estimate_utility(
                protocol,
                fixed("a", lambda cls=cls: cls(set(range(n - 1)))),
                STANDARD_GAMMA,
                RUNS,
                seed=8,
            ).mean
            for cls in (LockWatchingAborter, SignalDeviator)
        )
        assert best == pytest.approx(
            u_opt_nsfe(STANDARD_GAMMA, n, n - 1), abs=TOL
        )


class TestTheorem6:
    """Utility-balanced ⇒ ideally γC-fair under c(t) = u(Π, A_t) − s(t)."""

    def test_ideal_fairness_with_derived_cost(self):
        n = 4
        protocol = OptNSfeProtocol(make_concat(n, 8))
        factories_per_t = {
            t: [fixed(f"lw{t}", lambda t=t: LockWatchingAborter(set(range(t))))]
            for t in range(1, n)
        }
        profile = balance_profile(
            protocol, factories_per_t, STANDARD_GAMMA, n_runs=300, seed=9
        )
        cost = optimal_cost_from_profile(profile)
        check = check_ideal_fairness(profile, cost, tol=0.02)
        assert check.holds(tol=0.02)
        # The derived cost matches the analytic φ(t) − γ11.
        for t in range(1, n):
            expected = per_t_bound(n, t, STANDARD_GAMMA) - STANDARD_GAMMA.gamma11
            assert cost(t) == pytest.approx(expected, abs=2 * TOL)
