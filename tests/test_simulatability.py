"""View-simulatability checks: statistical privacy of protocol views.

The proofs' simulators exist because the relevant views are input-
independent until the moment the ideal functionality is asked.  These
tests verify that operationally: the corrupted party's phase-1 view in
ΠOpt2SFE (its share and the order coin î) and a corrupted GMW party's
pre-output view are statistically independent of the honest inputs.
"""

from collections import Counter

import pytest

from repro.analysis import statistical_distance
from repro.crypto import Rng
from repro.engine import run_execution
from repro.engine.adversary import Adversary
from repro.functionalities.priv_sfe import ShareGenOutput
from repro.functions import make_and, make_swap
from repro.gmw import GmwProtocol
from repro.circuits import and_circuit
from repro.protocols import Opt2SfeProtocol


class Phase1Snooper(Adversary):
    """Corrupt p0, join phase 1, record the view, then stop participating."""

    def __init__(self):
        self.share_digest = None
        self.first_receiver = None
        self._input = None

    def initial_corruptions(self, n):
        return {0}

    def on_corrupt(self, party):
        self._input = party.view.input

    def on_round(self, iface):
        if iface.round == 0:
            iface.call_functionality(0, "F_sharegen2", self._input)

    def on_functionality_notify(self, fname, event, data):
        if event == "corrupted-outputs" and 0 in data:
            payload = data[0]
            if isinstance(payload, ShareGenOutput):
                self.share_digest = payload.share.summand % 16
                self.first_receiver = payload.first_receiver


def phase1_view_distribution(inputs, runs=1500, seed=0):
    protocol = Opt2SfeProtocol(make_swap(8))
    views = Counter()
    for k in range(runs):
        adversary = Phase1Snooper()
        try:
            run_execution(protocol, inputs, adversary, Rng((seed, k)))
        except Exception:  # pragma: no cover - snooper never breaks runs
            raise
        views[(adversary.share_digest, adversary.first_receiver)] += 1
    return views


class TestOpt2SfePhase1Privacy:
    def test_view_independent_of_honest_input(self):
        """The corrupted share+î distribution is the same whatever the
        honest party holds — the simulator can fake it without f."""
        a = phase1_view_distribution((3, 9), seed="p1")
        b = phase1_view_distribution((3, 250), seed="p2")
        self_noise = statistical_distance(
            phase1_view_distribution((3, 9), seed="p3"), a
        )
        assert statistical_distance(a, b) <= self_noise + 0.06

    def test_share_summand_uniform(self):
        views = phase1_view_distribution((3, 9), runs=2000, seed="p4")
        digests = Counter()
        for (digest, _), count in views.items():
            digests[digest] += count
        assert set(digests) == set(range(16))
        assert all(75 <= c <= 175 for c in digests.values())

    def test_first_receiver_unbiased(self):
        views = phase1_view_distribution((3, 9), runs=1200, seed="p5")
        receiver_counts = Counter()
        for (_, receiver), count in views.items():
            receiver_counts[receiver] += count
        assert abs(receiver_counts[0] - receiver_counts[1]) < 150


class GmwWireSnooper(Adversary):
    """Corrupt p0 in GMW and record its wire-share view before outputs."""

    def __init__(self):
        self.view = []

    def initial_corruptions(self, n):
        return {0}

    def on_round(self, iface):
        if iface.round >= 2:
            return  # stop before the output-share round
        for message in iface.rushing_messages():
            if message.receiver == 0 and isinstance(message.payload, tuple):
                kind = message.payload[0]
                if kind == "gmw-input-shares":
                    self.view.append(tuple(sorted(message.payload[1].items())))


def gmw_view_distribution(inputs, runs=1200, seed=0):
    protocol = GmwProtocol(and_circuit(), [1, 1], make_and())
    views = Counter()
    for k in range(runs):
        adversary = GmwWireSnooper()
        run_execution(protocol, inputs, adversary, Rng((seed, k)))
        views[tuple(adversary.view)] += 1
    return views


class TestGmwWirePrivacy:
    def test_input_shares_independent_of_honest_input(self):
        """p1's share of the honest input bit is uniform: the views under
        x2 = 0 and x2 = 1 are statistically identical."""
        a = gmw_view_distribution((1, 0), seed="g1")
        b = gmw_view_distribution((1, 1), seed="g2")
        self_noise = statistical_distance(
            gmw_view_distribution((1, 0), seed="g3"), a
        )
        assert statistical_distance(a, b) <= self_noise + 0.06
