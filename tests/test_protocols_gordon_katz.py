"""Gordon–Katz 1/p protocols and the leaky Π̃ (paper §5, Appendix C)."""

import pytest

from repro.adversaries import (
    FixedRoundStopper,
    KnownOutputStopper,
    LeakyInputExtractor,
    PassiveAdversary,
)
from repro.core import FairnessEvent
from repro.crypto import Rng
from repro.engine import run_execution
from repro.functions import make_and, make_millionaires, make_swap
from repro.protocols import GordonKatzProtocol, LeakyAndProtocol
from repro.protocols.gordon_katz import classify_gk


class TestGordonKatzConstruction:
    def test_round_counts_scale_with_p(self):
        rounds = [
            GordonKatzProtocol(make_and(), p).reveal_rounds for p in (2, 4, 8)
        ]
        assert rounds[1] == 2 * rounds[0]
        assert rounds[2] == 4 * rounds[0]

    def test_range_variant_rounds_scale_quadratically(self):
        rounds = [
            GordonKatzProtocol(make_and(), p, variant="range").reveal_rounds
            for p in (2, 4)
        ]
        assert rounds[1] == 4 * rounds[0]

    def test_alpha_formulas(self):
        domain = GordonKatzProtocol(make_and(), 4, variant="domain")
        assert domain.alpha == pytest.approx(1 / (4 * 2))
        rng = GordonKatzProtocol(make_and(), 4, variant="range")
        assert rng.alpha == pytest.approx(1 / (16 * 2))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GordonKatzProtocol(make_and(), 1)
        with pytest.raises(ValueError):
            GordonKatzProtocol(make_and(), 2, variant="bogus")
        from repro.functions import make_concat

        with pytest.raises(ValueError):
            GordonKatzProtocol(make_concat(3, 4), 2)

    def test_exponential_domain_rejected(self):
        with pytest.raises(ValueError):
            GordonKatzProtocol(make_swap(16), 2)


class TestGordonKatzExecution:
    def setup_method(self):
        self.protocol = GordonKatzProtocol(make_and(), p=2)

    @pytest.mark.parametrize("x", [0, 1])
    @pytest.mark.parametrize("y", [0, 1])
    def test_honest_runs_are_correct(self, x, y):
        result = run_execution(
            self.protocol, (x, y), PassiveAdversary(), Rng((x, y))
        )
        assert result.outputs[0].value == x & y
        assert result.outputs[1].value == x & y

    def test_millionaires_domain_variant(self):
        protocol = GordonKatzProtocol(make_millionaires(3), p=2)
        result = run_execution(protocol, (5, 2), PassiveAdversary(), Rng(1))
        assert result.outputs[0].value == 1

    def test_early_abort_gives_fake_output(self):
        """Aborting at the first reveal leaves the honest party with a
        value drawn from the fake distribution (Fsfe$ semantics)."""
        from collections import Counter

        seen = Counter()
        for k in range(120):
            result = run_execution(
                self.protocol,
                (1, 1),
                FixedRoundStopper(0, stop_index=0),
                Rng(("abort", k)),
            )
            seen[result.outputs[1].value] += 1
        assert set(seen) == {0, 1}  # f(X̂, 1) = X̂ is uniform

    def test_white_box_classifier_uses_i_star(self):
        result = run_execution(
            self.protocol, (1, 1), FixedRoundStopper(0, stop_index=0), Rng(7)
        )
        event = self.protocol.classify_result(result)
        i_star = self.protocol._last_sharegen.i_star
        if i_star == 1:
            assert event in (FairnessEvent.E10, FairnessEvent.E11)
        else:
            assert event in (FairnessEvent.E00, FairnessEvent.E01)

    def test_classifier_falls_back_without_corruption(self):
        result = run_execution(self.protocol, (1, 1), PassiveAdversary(), Rng(8))
        assert self.protocol.classify_result(result) is None

    def test_fixed_stopper_rarely_wins(self):
        """Pr[E10] for a fixed stop is the geometric pmf ≤ α."""
        hits = 0
        runs = 300
        for k in range(runs):
            result = run_execution(
                self.protocol,
                (1, 1),
                FixedRoundStopper(0, stop_index=3),
                Rng(("fx", k)),
            )
            if self.protocol.classify_result(result) is FairnessEvent.E10:
                hits += 1
        # alpha = 1/4; pmf at index 3 = 0.25 * 0.75^3 ≈ 0.105; E10 further
        # requires the honest fake to miss (×0.5) ⇒ ≈ 0.053.
        assert hits / runs <= 0.13

    def test_known_output_stopper_bounded_by_1_over_p(self):
        for p in (2, 4):
            protocol = GordonKatzProtocol(make_and(), p=p)
            hits = 0
            runs = 300
            for k in range(runs):
                result = run_execution(
                    protocol,
                    (1, 1),
                    KnownOutputStopper(0, known_output=1),
                    Rng(("ko", p, k)),
                )
                if protocol.classify_result(result) is FairnessEvent.E10:
                    hits += 1
            assert hits / runs <= 1 / p + 0.07


class TestGordonKatzRangeVariant:
    """Execution coverage for the poly-range construction (Theorem 24)."""

    def setup_method(self):
        self.protocol = GordonKatzProtocol(make_and(), p=2, variant="range")

    @pytest.mark.parametrize("x", [0, 1])
    @pytest.mark.parametrize("y", [0, 1])
    def test_honest_runs_are_correct(self, x, y):
        result = run_execution(
            self.protocol, (x, y), PassiveAdversary(), Rng(("rg", x, y))
        )
        assert result.outputs[0].value == x & y
        assert result.outputs[1].value == x & y

    def test_fakes_are_uniform_range_elements(self):
        """Aborting at the first reveal leaves a uniform range element."""
        from collections import Counter

        seen = Counter()
        for k in range(150):
            result = run_execution(
                self.protocol,
                (1, 1),
                FixedRoundStopper(0, stop_index=0),
                Rng(("rgf", k)),
            )
            seen[result.outputs[1].value] += 1
        assert set(seen) == {0, 1}
        assert 45 <= seen[1] <= 105  # ≈ uniform over {0, 1}

    def test_known_output_stopper_bounded(self):
        hits = 0
        runs = 250
        for k in range(runs):
            result = run_execution(
                self.protocol,
                (1, 1),
                KnownOutputStopper(0, known_output=1),
                Rng(("rgk", k)),
            )
            if self.protocol.classify_result(result) is FairnessEvent.E10:
                hits += 1
        assert hits / runs <= 1 / self.protocol.p + 0.05

    def test_alpha_smaller_than_domain_variant(self):
        domain = GordonKatzProtocol(make_and(), p=2, variant="domain")
        assert self.protocol.alpha < domain.alpha


class TestLeakyProtocol:
    def test_honest_run_computes_and(self):
        protocol = LeakyAndProtocol()
        for x1, x2 in [(0, 0), (0, 1), (1, 0), (1, 1)]:
            result = run_execution(
                protocol, (x1, x2), PassiveAdversary(), Rng((x1, x2))
            )
            assert result.outputs[0].value == x1 & x2
            assert result.outputs[1].value == x1 & x2

    def test_honest_p2_never_triggers_leak(self):
        protocol = LeakyAndProtocol()
        result = run_execution(protocol, (1, 1), PassiveAdversary(), Rng(5))
        leaks = [
            m
            for m in result.transcript
            if isinstance(m.payload, tuple)
            and len(m.payload) == 2
            and m.payload[0] == "leak"
        ]
        assert leaks == []

    def test_deviating_p2_extracts_input_quarter_of_the_time(self):
        protocol = LeakyAndProtocol()
        extracted = 0
        runs = 400
        for k in range(runs):
            adversary = LeakyInputExtractor()
            run_execution(protocol, (1, 0), adversary, Rng(("leak", k)))
            if adversary.extracted_input is not None:
                extracted += 1
        assert abs(extracted / runs - 0.25) < 0.07

    def test_extracted_value_is_the_real_input(self):
        protocol = LeakyAndProtocol()
        values = set()
        for k in range(200):
            adversary = LeakyInputExtractor()
            run_execution(protocol, (1, 0), adversary, Rng(("lv", k)))
            if adversary.extracted_input is not None:
                values.add(adversary.extracted_input)
        assert values == {1}


class TestClassifyGkHelper:
    def test_missing_sharegen_falls_back(self):
        assert classify_gk(None_result(), make_and(), None) is None


def None_result():
    from repro.engine.execution import ExecutionResult

    return ExecutionResult(
        protocol_name="x",
        n=2,
        inputs=(1, 1),
        outputs={},
        corrupted={0},
        adversary_claim=None,
        rounds_used=1,
    )
