"""Secret sharing tests: additive, XOR, Shamir, authenticated, VSS."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    Field,
    Rng,
    ShareVerificationError,
    additive_reconstruct,
    additive_share,
    deal,
    reconstruct,
    shamir_reconstruct,
    shamir_share,
    xor_reconstruct,
    xor_share,
)
from repro.crypto import vss


class TestAdditiveSharing:
    def setup_method(self):
        self.field = Field(2**61 - 1)
        self.rng = Rng(b"add")

    @given(st.integers(0, 2**61 - 2), st.integers(1, 8))
    @settings(max_examples=40)
    def test_roundtrip(self, secret, n):
        shares = additive_share(secret, n, self.field, Rng((secret, n)))
        assert additive_reconstruct(shares, self.field) == secret

    def test_single_share(self):
        shares = additive_share(42, 1, self.field, self.rng)
        assert shares == [42]

    def test_zero_shares_rejected(self):
        with pytest.raises(ValueError):
            additive_share(1, 0, self.field, self.rng)

    def test_empty_reconstruct_rejected(self):
        with pytest.raises(ValueError):
            additive_reconstruct([], self.field)

    def test_individual_share_uniform(self):
        """Any single summand of a fixed secret is (near-)uniform."""
        field = Field(5)
        from collections import Counter

        counts = Counter(
            additive_share(3, 2, field, self.rng)[0] for _ in range(5000)
        )
        assert set(counts) == set(range(5))
        assert all(800 <= c <= 1200 for c in counts.values())


class TestXorSharing:
    @given(st.integers(0, 1), st.integers(1, 6))
    @settings(max_examples=30)
    def test_roundtrip(self, bit, n):
        shares = xor_share(bit, n, Rng((bit, n)))
        assert xor_reconstruct(shares) == bit

    def test_non_bit_rejected(self):
        with pytest.raises(ValueError):
            xor_share(2, 3, Rng(1))
        with pytest.raises(ValueError):
            xor_reconstruct([0, 2])


class TestShamir:
    def setup_method(self):
        self.field = Field(2**61 - 1)

    @given(st.integers(0, 1000), st.integers(1, 5), st.integers(0, 3))
    @settings(max_examples=40)
    def test_roundtrip(self, secret, threshold, extra):
        n = threshold + extra
        shares = shamir_share(
            secret, threshold, n, self.field, Rng((secret, threshold, n))
        )
        assert shamir_reconstruct(shares, threshold, self.field) == secret

    def test_subset_reconstructs(self):
        shares = shamir_share(77, 3, 6, self.field, Rng(1))
        assert shamir_reconstruct(shares[2:5], 3, self.field) == 77

    def test_too_few_shares_rejected(self):
        shares = shamir_share(77, 3, 6, self.field, Rng(1))
        with pytest.raises(ValueError):
            shamir_reconstruct(shares[:2], 3, self.field)

    def test_below_threshold_no_information(self):
        """t-1 shares of different secrets are identically distributed
        (checked coarsely over a small field)."""
        from collections import Counter

        field = Field(11)
        c0 = Counter()
        c1 = Counter()
        for k in range(3000):
            c0[shamir_share(0, 2, 3, field, Rng(("a", k)))[0].y] += 1
            c1[shamir_share(9, 2, 3, field, Rng(("b", k)))[0].y] += 1
        # Both marginals should be near-uniform on GF(11).
        for counter in (c0, c1):
            assert all(180 <= counter[v] <= 380 for v in range(11))

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            shamir_share(1, 0, 3, self.field, Rng(1))
        with pytest.raises(ValueError):
            shamir_share(1, 4, 3, self.field, Rng(1))

    def test_field_too_small(self):
        with pytest.raises(ValueError):
            shamir_share(1, 2, 7, Field(7), Rng(1))


class TestAuthenticatedSharing:
    def setup_method(self):
        self.rng = Rng(b"auth")

    @given(st.integers(0, 2**64 - 1))
    @settings(max_examples=30)
    def test_roundtrip_both_directions(self, secret):
        s1, s2 = deal(secret, Rng(secret))
        assert reconstruct(s1, s2.wire_message()) == secret
        assert reconstruct(s2, s1.wire_message()) == secret

    def test_tampered_summand_detected(self):
        s1, s2 = deal(99, self.rng)
        summand, t = s2.wire_message()
        with pytest.raises(ShareVerificationError):
            reconstruct(s1, (summand + 1, t))

    def test_tampered_tag_detected(self):
        s1, s2 = deal(99, self.rng)
        summand, t = s2.wire_message()
        with pytest.raises(ShareVerificationError):
            reconstruct(s1, (summand, b"\x00" * len(t)))

    def test_malformed_message_detected(self):
        s1, _ = deal(99, self.rng)
        for bad in (None, ("x",), (1, 2), "garbage", (1.5, b"t")):
            with pytest.raises(ShareVerificationError):
                reconstruct(s1, bad)

    def test_swapped_shares_detected(self):
        """A share from a different dealing must not reconstruct."""
        s1, _ = deal(1, Rng(b"d1"))
        _, other2 = deal(1, Rng(b"d2"))
        with pytest.raises(ShareVerificationError):
            reconstruct(s1, other2.wire_message())

    def test_secret_too_large(self):
        with pytest.raises(ValueError):
            deal(1 << 128, self.rng)

    def test_single_summand_reveals_nothing(self):
        """p1's summand alone is uniform regardless of the secret (checked
        via low bits)."""
        from collections import Counter

        counts = Counter(
            deal(5, Rng(("u", k)))[0].summand % 8 for k in range(4000)
        )
        assert all(380 <= counts[v] <= 620 for v in range(8))


class TestVss:
    def setup_method(self):
        self.rng = Rng(b"vss")

    def test_deal_and_reconstruct(self):
        shares, keys = vss.deal(1234, 3, 5, self.rng)
        y = vss.public_reconstruct(shares, keys[0], 3)
        assert y == 1234

    def test_threshold_minus_one_blocks(self):
        shares, keys = vss.deal(1234, 3, 5, self.rng)
        with pytest.raises(vss.VssError):
            vss.public_reconstruct(shares[:2], keys[0], 3)

    def test_invalid_share_ignored(self):
        shares, keys = vss.deal(55, 3, 5, self.rng)
        from dataclasses import replace

        forged = replace(
            shares[0],
            share=type(shares[0].share)(shares[0].share.x, shares[0].share.y + 1),
        )
        announced = [forged] + list(shares[1:4])
        # Three valid shares remain -> reconstruction succeeds and is correct.
        assert vss.public_reconstruct(announced, keys[1], 3) == 55

    def test_all_forged_blocks(self):
        shares, keys = vss.deal(55, 2, 3, self.rng)
        garbage = ["x", None, 42]
        with pytest.raises(vss.VssError):
            vss.public_reconstruct(garbage, keys[0], 2)

    def test_check_broadcast_share(self):
        shares, keys = vss.deal(9, 2, 3, self.rng)
        assert vss.check_broadcast_share(shares[0], keys[2])
        assert not vss.check_broadcast_share("junk", keys[2])

    def test_duplicate_announcements_deduplicated(self):
        shares, keys = vss.deal(8, 2, 3, self.rng)
        announced = [shares[0], shares[0], shares[1]]
        assert vss.public_reconstruct(announced, keys[0], 2) == 8
