"""Crash-safe run ledger: record/resume round-trips on every venue,
quarantine of corrupt and stale records, opt-in resume semantics,
opaque-task exclusion, and the resolve_journal precedence/validation
contract (``--journal``/``--resume`` vs ``REPRO_JOURNAL_DIR``/
``REPRO_RESUME``)."""

import threading

import pytest

from repro.adversaries import strategy_space_for_protocol
from repro.core.utility import EventCounts
from repro.core import FairnessEvent
from repro.functions import make_swap
from repro.protocols import Opt2SfeProtocol
from repro.runtime import (
    ENV_JOURNAL_DIR,
    ENV_RESUME,
    NO_FAULTS,
    DistributedRunner,
    ExecutionTask,
    ProcessPoolRunner,
    RetryPolicy,
    RunJournal,
    SerialRunner,
    resolve_journal,
)
from repro.runtime.chaos import payload_fingerprint
from repro.runtime.distributed import WorkerServer
from repro.runtime.journal import JOURNAL_SCHEMA_VERSION, _env_flag

FAST = dict(backoff_s=0.01, backoff_multiplier=1.0)


def _tasks(n_runs=24, seed="journal-test"):
    protocol = Opt2SfeProtocol(make_swap(8))
    space = strategy_space_for_protocol(protocol)[:2]
    return [
        ExecutionTask(protocol, f, n_runs, seed=(seed, f.name))
        for f in space
    ]


def _serial(journal=None):
    return SerialRunner(
        chunk_size=6,
        retry=RetryPolicy(max_retries=2, **FAST),
        fault=NO_FAULTS,
        journal=journal,
    )


@pytest.fixture(autouse=True)
def _no_ambient_journal(monkeypatch):
    """Explicit journals only: ambient env knobs must not leak in."""
    monkeypatch.delenv(ENV_JOURNAL_DIR, raising=False)
    monkeypatch.delenv(ENV_RESUME, raising=False)


# -- keys ---------------------------------------------------------------------


class TestKeys:
    def test_key_is_deterministic(self, tmp_path):
        journal = RunJournal(tmp_path)
        task = _tasks()[0]
        assert journal.key_for(task, 0, 6) == journal.key_for(task, 0, 6)

    def test_key_varies_with_span_and_content(self, tmp_path):
        journal = RunJournal(tmp_path)
        a, b = _tasks()
        keys = {
            journal.key_for(a, 0, 6),
            journal.key_for(a, 6, 12),
            journal.key_for(b, 0, 6),
        }
        assert len(keys) == 3

    def test_opaque_task_has_no_key(self, tmp_path):
        journal = RunJournal(tmp_path)

        class Opaque:
            label = "opaque"
            n_runs = 12

        assert journal.key_for(Opaque(), 0, 6) is None


# -- record / resume round trips ---------------------------------------------


class TestRecordResume:
    def test_serial_resume_replays_every_span(self, tmp_path):
        baseline = _serial().run(_tasks())

        first = _serial(journal=RunJournal(tmp_path))
        values = first.run(_tasks())
        assert values == baseline
        stats = first.last_stats
        assert stats.journal_appended_chunks == stats.n_chunks
        assert stats.journal_replayed_chunks == 0

        second = _serial(journal=RunJournal(tmp_path, resume=True))
        resumed = second.run(_tasks())
        assert payload_fingerprint(resumed) == payload_fingerprint(baseline)
        stats = second.last_stats
        assert stats.journal_replayed_chunks == stats.n_chunks
        assert stats.executions == stats.requested
        assert all(c.outcome == "journaled" for c in stats.chunks)
        assert all(c.engine == "journal" for c in stats.chunks)

    def test_resume_is_strictly_opt_in(self, tmp_path):
        _serial(journal=RunJournal(tmp_path)).run(_tasks())
        rerun = _serial(journal=RunJournal(tmp_path, resume=False))
        rerun.run(_tasks())
        assert rerun.last_stats.journal_replayed_chunks == 0

    def test_pool_resumes_a_serial_journal(self, tmp_path):
        baseline = _serial().run(_tasks())
        _serial(journal=RunJournal(tmp_path)).run(_tasks())
        pool = ProcessPoolRunner(
            2,
            chunk_size=6,
            min_parallel_runs=0,
            retry=RetryPolicy(max_retries=2, **FAST),
            fault=NO_FAULTS,
            journal=RunJournal(tmp_path, resume=True),
        )
        resumed = pool.run(_tasks())
        assert payload_fingerprint(resumed) == payload_fingerprint(baseline)
        stats = pool.last_stats
        assert stats.journal_replayed_chunks == stats.n_chunks

    def test_distributed_resumes_a_serial_journal(self, tmp_path):
        baseline = _serial().run(_tasks())
        _serial(journal=RunJournal(tmp_path)).run(_tasks())

        server = WorkerServer("127.0.0.1", 0)
        port = server.bind()
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"once": True}, daemon=True
        )
        thread.start()
        try:
            dist = DistributedRunner(
                [("127.0.0.1", port)],
                chunk_size=6,
                retry=RetryPolicy(max_retries=2, **FAST),
                fault=NO_FAULTS,
                journal=RunJournal(tmp_path, resume=True),
            )
            resumed = dist.run(_tasks())
        finally:
            thread.join(timeout=5.0)
        assert payload_fingerprint(resumed) == payload_fingerprint(baseline)
        stats = dist.last_stats
        assert stats.journal_replayed_chunks == stats.n_chunks
        assert stats.executions == stats.requested

    def test_partial_journal_recomputes_only_the_gap(self, tmp_path):
        baseline = _serial().run(_tasks())
        _serial(journal=RunJournal(tmp_path)).run(_tasks())

        # Drop one record: that single span must recompute, the rest replay.
        records = sorted((tmp_path / "records").glob("*.json"))
        records[len(records) // 2].unlink()

        resumed = _serial(journal=RunJournal(tmp_path, resume=True))
        values = resumed.run(_tasks())
        assert payload_fingerprint(values) == payload_fingerprint(baseline)
        stats = resumed.last_stats
        assert stats.journal_replayed_chunks == stats.n_chunks - 1
        # The recomputed chunk is re-journaled for the next resume.
        assert stats.journal_appended_chunks == 1

    def test_interrupted_run_resumes_byte_identical(self, tmp_path):
        """SIGINT-at-a-chunk-boundary simulation: the interrupted batch
        leaves a durable prefix, and ``--resume`` completes it to the
        exact fingerprint of an uninterrupted run."""
        baseline = _serial().run(_tasks())

        class Booby:
            def __init__(self, inner, boom_start):
                self._inner = inner
                self._boom = boom_start

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def run_chunk(self, start, stop):
                if start == self._boom:
                    raise KeyboardInterrupt()
                return self._inner.run_chunk(start, stop)

        tasks = _tasks()
        wrapped = [Booby(tasks[0], boom_start=12), tasks[1]]
        first = _serial(journal=RunJournal(tmp_path))
        with pytest.raises(KeyboardInterrupt):
            first.run(wrapped)
        assert first.last_stats.cancelled_chunks >= 1
        assert len(RunJournal(tmp_path)) >= 1

        second = _serial(journal=RunJournal(tmp_path, resume=True))
        values = second.run(_tasks())
        assert payload_fingerprint(values) == payload_fingerprint(baseline)
        assert second.last_stats.journal_replayed_chunks >= 1


# -- opaque tasks -------------------------------------------------------------


class _PlainTask:
    """Mergeable but content-opaque: must never be journaled."""

    label = "plain"

    def __init__(self, n_runs):
        self.n_runs = n_runs

    def run_chunk(self, start, stop):
        counts = EventCounts()
        for _ in range(start, stop):
            counts.record(FairnessEvent.E11, frozenset({0}))
        return counts


class TestOpaqueTasks:
    def test_opaque_tasks_are_never_journaled(self, tmp_path):
        runner = _serial(journal=RunJournal(tmp_path))
        values = runner.run([_PlainTask(24)])
        assert values[0].total == 24
        assert runner.last_stats.journal_appended_chunks == 0
        assert len(RunJournal(tmp_path)) == 0

    def test_record_reports_refusal(self, tmp_path):
        journal = RunJournal(tmp_path)
        assert journal.record(_PlainTask(12), 0, 0, 6, EventCounts()) is False


# -- corruption and staleness -------------------------------------------------


class TestQuarantine:
    def _journaled(self, tmp_path):
        _serial(journal=RunJournal(tmp_path)).run(_tasks())
        return sorted((tmp_path / "records").glob("*.json"))

    def test_bitflip_is_quarantined_and_counted(self, tmp_path):
        baseline = _serial().run(_tasks())
        records = self._journaled(tmp_path)
        victim = records[len(records) // 2]
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        victim.write_bytes(bytes(raw))

        resumed = _serial(journal=RunJournal(tmp_path, resume=True))
        values = resumed.run(_tasks())
        assert payload_fingerprint(values) == payload_fingerprint(baseline)
        stats = resumed.last_stats
        assert stats.journal_corrupt_records == 1
        assert stats.journal_replayed_chunks == len(records) - 1
        quarantined = list((tmp_path / "quarantine").glob("*.json"))
        assert [p.name for p in quarantined] == [victim.name]

    def test_truncated_record_is_corrupt(self, tmp_path):
        records = self._journaled(tmp_path)
        records[0].write_text(records[0].read_text()[: len("{")])
        resumed = _serial(journal=RunJournal(tmp_path, resume=True))
        resumed.run(_tasks())
        assert resumed.last_stats.journal_corrupt_records == 1

    def test_renamed_record_does_not_satisfy_the_wrong_key(self, tmp_path):
        """The filename is part of the integrity story: a valid record
        copied onto another span's key must read as corrupt, not as that
        span's partial."""
        records = self._journaled(tmp_path)
        a, b = records[0], records[1]
        payload = a.read_bytes()
        b.unlink()
        b.write_bytes(payload)

        journal = RunJournal(tmp_path, resume=True)
        journal._load()
        counts = journal.drain_new_counts()
        assert counts["corrupt"] == 1

    def test_stale_records_counted_when_the_task_changed(self, tmp_path):
        self._journaled(tmp_path)
        # Same labels and spans, different seed: every record is stale.
        fresh = _tasks(seed="journal-test-v2")
        baseline = _serial().run(_tasks(seed="journal-test-v2"))
        resumed = _serial(journal=RunJournal(tmp_path, resume=True))
        values = resumed.run(fresh)
        assert payload_fingerprint(values) == payload_fingerprint(baseline)
        stats = resumed.last_stats
        assert stats.journal_replayed_chunks == 0
        assert stats.journal_stale_records == stats.n_chunks
        assert stats.journal_corrupt_records == 0

    def test_stray_tmp_files_are_ignored(self, tmp_path):
        records = self._journaled(tmp_path)
        (tmp_path / "records" / "half-written.tmp").write_text("garbage")
        resumed = _serial(journal=RunJournal(tmp_path, resume=True))
        resumed.run(_tasks())
        stats = resumed.last_stats
        assert stats.journal_corrupt_records == 0
        assert stats.journal_replayed_chunks == len(records)


# -- configuration plumbing ---------------------------------------------------


class TestResolveJournal:
    def test_no_knobs_means_no_journal(self):
        assert resolve_journal() is None

    def test_explicit_path_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_JOURNAL_DIR, str(tmp_path / "env"))
        journal = resolve_journal(tmp_path / "cli")
        assert journal.root == tmp_path / "cli"

    def test_env_dir_is_the_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_JOURNAL_DIR, str(tmp_path / "env"))
        journal = resolve_journal()
        assert journal.root == tmp_path / "env"
        assert journal.resume is False

    def test_resume_composes_with_env_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_RESUME, "1")
        assert resolve_journal(tmp_path).resume is True
        monkeypatch.setenv(ENV_RESUME, "0")
        assert resolve_journal(tmp_path, resume=True).resume is True
        assert resolve_journal(tmp_path, resume=False).resume is False

    def test_resume_without_a_directory_raises(self):
        with pytest.raises(ValueError, match=ENV_JOURNAL_DIR):
            resolve_journal(resume=True)

    def test_env_resume_without_dir_raises_from_env(self, monkeypatch):
        monkeypatch.setenv(ENV_RESUME, "true")
        with pytest.raises(ValueError, match=ENV_RESUME):
            RunJournal.from_env()

    @pytest.mark.parametrize("raw", ["maybe", "2", "yes please"])
    def test_garbage_resume_flag_names_the_variable(self, raw, monkeypatch):
        monkeypatch.setenv(ENV_RESUME, raw)
        with pytest.raises(ValueError, match=ENV_RESUME):
            _env_flag(ENV_RESUME)

    @pytest.mark.parametrize(
        "raw,expected",
        [("", False), ("0", False), ("off", False), ("1", True),
         ("TRUE", True), ("on", True)],
    )
    def test_flag_vocabulary(self, raw, expected, monkeypatch):
        monkeypatch.setenv(ENV_RESUME, raw)
        assert _env_flag(ENV_RESUME) is expected

    def test_schema_version_is_part_of_the_key(self, tmp_path, monkeypatch):
        """Bumping the schema version must orphan old records (they read
        as stale, never as live partials for the new format)."""
        import repro.runtime.journal as journal_mod

        journal = RunJournal(tmp_path)
        task = _tasks()[0]
        old_key = journal.key_for(task, 0, 6)
        monkeypatch.setattr(
            journal_mod, "JOURNAL_SCHEMA_VERSION", JOURNAL_SCHEMA_VERSION + 1
        )
        assert journal.key_for(task, 0, 6) != old_key
