"""Partial-fairness analysis tests (Theorem 23, Lemmas 25-27)."""

import pytest

from repro.adversaries import FixedRoundStopper, KnownOutputStopper
from repro.analysis import (
    gk_e10_probability,
    gk_ideal_outcomes,
    gk_real_outcomes,
    gk_realization_distance,
    leaky_distinguisher_probabilities,
    leaky_ideal_bound_violated,
    leaky_privacy_distance,
    leaky_real_views,
    leaky_simulated_views,
    statistical_distance,
)
from repro.functions import make_and
from repro.protocols import GordonKatzProtocol


class TestStatisticalDistance:
    def test_identical(self):
        assert statistical_distance({"a": 10, "b": 10}, {"a": 1, "b": 1}) == 0

    def test_disjoint(self):
        assert statistical_distance({"a": 5}, {"b": 5}) == 1.0

    def test_partial_overlap(self):
        d = statistical_distance({"a": 3, "b": 1}, {"a": 1, "b": 3})
        assert d == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            statistical_distance({}, {"a": 1})


class TestGkRealization:
    """Theorem 23: the GK protocol realizes Fsfe$ — real and simulated
    outcome distributions coincide up to Monte-Carlo noise."""

    def setup_method(self):
        self.protocol = GordonKatzProtocol(make_and(), p=2)
        self.inputs = (1, 1)

    def _baseline(self, builder, runs):
        """Self-distance of the real distribution: pure sampling noise."""
        a = gk_real_outcomes(self.protocol, builder, self.inputs, runs, 100)
        b = gk_real_outcomes(self.protocol, builder, self.inputs, runs, 200)
        return statistical_distance(a, b)

    def test_known_output_stopper_realization(self):
        builder = lambda: KnownOutputStopper(0, known_output=1)
        runs = 300
        d = gk_realization_distance(
            self.protocol, builder, self.inputs, runs, seed=1
        )
        assert d <= self._baseline(builder, runs) + 0.08

    def test_fixed_round_stopper_realization(self):
        builder = lambda: FixedRoundStopper(0, stop_index=2)
        runs = 300
        d = gk_realization_distance(
            self.protocol, builder, self.inputs, runs, seed=2
        )
        assert d <= self._baseline(builder, runs) + 0.08

    def test_e10_probability_bounded(self):
        prob = gk_e10_probability(
            self.protocol,
            lambda: KnownOutputStopper(0, known_output=1),
            self.inputs,
            n_runs=300,
            seed=3,
        )
        assert prob <= 1 / self.protocol.p + 0.06

    def test_ideal_outcomes_have_same_support_shape(self):
        builder = lambda: FixedRoundStopper(1, stop_index=0)
        real = gk_real_outcomes(self.protocol, builder, self.inputs, 100, 4)
        ideal = gk_ideal_outcomes(self.protocol, builder, self.inputs, 100, 5)
        # Both stop after exactly one observed value.
        assert all(k[1] == 1 for k in real)
        assert all(k[1] == 1 for k in ideal)


class TestLeakySeparation:
    """Lemmas 26/27: Π̃ separates 1/p-security+privacy from Fsfe$."""

    def test_distinguishers_show_non_realization(self):
        p_z1, p_z2 = leaky_distinguisher_probabilities(n_runs=600, seed=1)
        # Real world: Z1 fires (leak correct AND z1 = 0) essentially
        # whenever Z2 fires (leak happened), both ≈ 1/4.
        assert abs(p_z2 - 0.25) < 0.06
        assert abs(p_z1 - p_z2) < 0.03
        assert leaky_ideal_bound_violated(p_z1, p_z2, tolerance=0.03)

    def test_privacy_simulator_matches_views(self):
        d = leaky_privacy_distance(n_runs=500, seed=2)
        baseline = statistical_distance(
            leaky_real_views(500, 10), leaky_real_views(500, 11)
        )
        assert d <= baseline + 0.06

    def test_view_support(self):
        views = leaky_simulated_views(50, 3)
        for (x1, leaked, count, all_zero), _ in views.items():
            assert x1 in (0, 1)
            assert leaked in (None, x1)
            assert all_zero
            assert count > 0
