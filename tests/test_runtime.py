"""Batch runtime tests: mergeable counts, chunk planning, backend
determinism (serial vs. process pool), adaptive early stopping, stats,
and jobs resolution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries import strategy_space_for_protocol
from repro.analysis import (
    assess_protocol,
    balance_profile,
    estimate_utility,
    measure_reconstruction_rounds,
    opt2sfe_outcome_distributions,
    run_batch,
    run_stats_to_dict,
    sweep_strategies,
    to_dict,
)
from repro.core import FairnessEvent, PayoffVector
from repro.core.utility import EventCounts
from repro.functions import make_and, make_concat, make_swap
from repro.protocols import (
    DummyProtocol,
    GordonKatzProtocol,
    Opt2SfeProtocol,
    OptNSfeProtocol,
)
from repro.runtime import (
    COST_CHUNK_GROWTH,
    COST_UNIT_WEIGHT,
    CiWidthStop,
    ExecutionTask,
    ProcessPoolRunner,
    RunStats,
    SerialRunner,
    UtilityBoundStop,
    cost_chunk_size,
    default_chunk_size,
    merge_partials,
    plan_chunks,
    resolve_jobs,
    resolve_runner,
)

GAMMA = PayoffVector(0.0, 0.0, 1.0, 0.5)


def pool(jobs, chunk_size=None):
    """A pool runner that never falls back to serial for small batches."""
    return ProcessPoolRunner(jobs, chunk_size=chunk_size, min_parallel_runs=0)


# -- EventCounts merge primitive --------------------------------------------


class TestEventCountsMerge:
    def test_merge_sums_counts(self):
        a = EventCounts()
        b = EventCounts()
        a.record(FairnessEvent.E10, frozenset({0}))
        a.record(FairnessEvent.E11, frozenset({0}))
        b.record(FairnessEvent.E10, frozenset({1}))
        out = a.merge(b)
        assert out is a
        assert a.counts[FairnessEvent.E10] == 2
        assert a.counts[FairnessEvent.E11] == 1
        assert a.total == 3

    def test_merge_sums_corruption_counts(self):
        a = EventCounts()
        b = EventCounts()
        a.record(FairnessEvent.E00, frozenset({0}))
        b.record(FairnessEvent.E00, frozenset({0}))
        b.record(FairnessEvent.E00, frozenset({0, 1}))
        a.merge(b)
        assert a.corruption_counts[frozenset({0})] == 2
        assert a.corruption_counts[frozenset({0, 1})] == 1

    def test_add_is_non_destructive(self):
        a = EventCounts()
        b = EventCounts()
        a.record(FairnessEvent.E10)
        b.record(FairnessEvent.E01)
        c = a + b
        assert c.total == 2
        assert a.total == 1 and b.total == 1
        assert c.counts[FairnessEvent.E10] == 1
        assert c.counts[FairnessEvent.E01] == 1

    def test_add_rejects_non_counts(self):
        with pytest.raises(TypeError):
            EventCounts() + 3

    def test_chunked_recording_equals_single_batch(self):
        whole = EventCounts()
        parts = [EventCounts() for _ in range(3)]
        events = [FairnessEvent.E10, FairnessEvent.E11, FairnessEvent.E00] * 4
        for i, event in enumerate(events):
            whole.record(event, frozenset({i % 2}))
            parts[i % 3].record(event, frozenset({i % 2}))
        merged = parts[0] + parts[1] + parts[2]
        assert merged == whole


# -- chunk planning and generic merging -------------------------------------


class TestChunkPlanning:
    def test_plan_partitions_range(self):
        for n in (1, 7, 16, 100, 601):
            spans = plan_chunks(n, 13)
            assert spans[0][0] == 0 and spans[-1][1] == n
            for (_, stop), (start, _) in zip(spans, spans[1:]):
                assert stop == start

    def test_default_chunk_size_ignores_jobs(self):
        # The plan must be a pure function of n_runs so early stopping
        # halts at the same run index under every backend.
        assert default_chunk_size(600) == default_chunk_size(600)
        assert plan_chunks(600) == plan_chunks(600)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            plan_chunks(0)
        with pytest.raises(ValueError):
            plan_chunks(0, schedule="cost", weight=8.0)
        with pytest.raises(ValueError):
            plan_chunks(-5)

    def test_chunk_size_larger_than_n_runs(self):
        # A single span covering everything, not an out-of-range stop.
        assert plan_chunks(10, 64) == [(0, 10)]
        assert plan_chunks(1, 1000) == [(0, 1)]

    def test_chunk_size_one(self):
        spans = plan_chunks(5, 1)
        assert spans == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]

    def test_rejects_nonpositive_chunk_size(self):
        for bad in (0, -1):
            with pytest.raises(ValueError):
                plan_chunks(10, bad)
            with pytest.raises(ValueError):
                plan_chunks(10, bad, schedule="cost", weight=8.0)

    def test_rejects_unknown_schedule(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            plan_chunks(10, schedule="fastest")

    @given(
        n_runs=st.integers(min_value=1, max_value=2000),
        chunk_size=st.one_of(
            st.none(), st.integers(min_value=1, max_value=700)
        ),
        schedule=st.sampled_from(["uniform", "cost"]),
        weight=st.one_of(
            st.none(),
            st.floats(
                min_value=0.05, max_value=500.0,
                allow_nan=False, allow_infinity=False,
            ),
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_spans_tile_exactly(self, n_runs, chunk_size, schedule, weight):
        # Both planning modes must partition [0, n_runs) exactly: spans
        # are contiguous, non-overlapping, start at 0, and end at n_runs.
        spans = plan_chunks(
            n_runs, chunk_size, schedule=schedule, weight=weight
        )
        assert spans[0][0] == 0
        assert spans[-1][1] == n_runs
        for start, stop in spans:
            assert start < stop
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start
        # Determinism: the plan is a pure function of its arguments.
        assert spans == plan_chunks(
            n_runs, chunk_size, schedule=schedule, weight=weight
        )

    def test_cost_mode_sizes_by_weight(self):
        base = default_chunk_size(640)
        cheap = plan_chunks(640, schedule="cost", weight=COST_UNIT_WEIGHT / 8)
        expensive = plan_chunks(640, schedule="cost", weight=400.0)
        reference = plan_chunks(640, schedule="cost", weight=COST_UNIT_WEIGHT)
        unmodelled = plan_chunks(640, schedule="cost", weight=None)
        assert len(expensive) > len(reference) > len(cheap)
        # A task at exactly the reference weight keeps the uniform size;
        # an unmodelled task always does.
        assert reference == plan_chunks(640)
        assert unmodelled == plan_chunks(640)
        # Growth is capped so cheap tasks keep early-stop granularity.
        assert cost_chunk_size(640, 0.001) == COST_CHUNK_GROWTH * base
        # Expensive tasks bottom out at single-run chunks.
        assert cost_chunk_size(640, 1e9) == 1

    def test_merge_partials_tuples_and_ints(self):
        assert merge_partials(2, 3) == 5
        assert merge_partials((1, 2), (3, 4)) == (4, 6)
        with pytest.raises(ValueError):
            merge_partials((1,), (1, 2))


# -- backend determinism ----------------------------------------------------


def _protocol_zoo():
    return [
        DummyProtocol(make_swap(8)),
        Opt2SfeProtocol(make_swap(8)),
        GordonKatzProtocol(make_and(), p=2),
    ]


@pytest.mark.parametrize("jobs", [2, 4])
@pytest.mark.parametrize("proto_idx", [0, 1, 2], ids=["dummy", "opt-2sfe", "gk"])
def test_serial_and_pool_are_bit_identical(proto_idx, jobs):
    protocol = _protocol_zoo()[proto_idx]
    factories = strategy_space_for_protocol(protocol)[:3]
    serial = sweep_strategies(
        protocol, factories, GAMMA, n_runs=40, seed=(11, protocol.name)
    )
    parallel = sweep_strategies(
        protocol,
        factories,
        GAMMA,
        n_runs=40,
        seed=(11, protocol.name),
        runner=pool(jobs, chunk_size=10),
    )
    assert serial == parallel  # identical UtilityEstimate dataclasses


def test_run_batch_counts_identical_across_backends():
    protocol = Opt2SfeProtocol(make_swap(8))
    factory = strategy_space_for_protocol(protocol)[1]
    serial = run_batch(protocol, factory, 60, seed=5)
    parallel = run_batch(
        protocol, factory, 60, seed=5, runner=pool(3, chunk_size=7)
    )
    assert serial == parallel
    assert parallel.total == 60


def test_assess_protocol_identical_across_backends():
    protocol = GordonKatzProtocol(make_and(), p=2)
    space = strategy_space_for_protocol(protocol)[:4]
    a = assess_protocol(protocol, space, GAMMA, n_runs=30, seed=2)
    b = assess_protocol(
        protocol, space, GAMMA, n_runs=30, seed=2, runner=pool(2)
    )
    assert a.utility == b.utility
    assert a.best_attack == b.best_attack


def test_balance_profile_identical_across_backends():
    from repro.adversaries import LockWatchingAborter, fixed

    protocol = OptNSfeProtocol(make_concat(3, 8))
    factories = {
        t: [fixed(f"lw{t}", lambda t=t: LockWatchingAborter(set(range(t))))]
        for t in range(1, 3)
    }
    a = balance_profile(protocol, factories, GAMMA, n_runs=20, seed=1)
    b = balance_profile(
        protocol, factories, GAMMA, n_runs=20, seed=1, runner=pool(2)
    )
    assert a.per_t == b.per_t


def test_balance_profile_passes_sampler_and_early_stop_through():
    """Regression: ``balance_profile`` silently dropped ``input_sampler``
    and had no ``early_stop`` at all, unlike every sibling entry point."""
    from repro.adversaries import LockWatchingAborter, fixed
    from repro.runtime import NO_FAULTS

    protocol = OptNSfeProtocol(make_concat(3, 8))
    factories = {
        t: [fixed(f"lw{t}", lambda t=t: LockWatchingAborter(set(range(t))))]
        for t in range(1, 3)
    }
    calls = []

    def sampler(rng):
        calls.append(1)
        return (1, 2, 3)

    full = balance_profile(
        protocol, factories, GAMMA, n_runs=60, seed=1,
        input_sampler=sampler, runner=SerialRunner(fault=NO_FAULTS),
    )
    assert len(calls) == 2 * 60  # the sampler drove every execution
    assert all(full.per_t[t].n_runs == 60 for t in (1, 2))

    # Early stopping: width 2.0 is satisfied at the first chunk boundary
    # (default chunk size 16 for a 60-run budget), so every per-t estimate
    # halts well short of the full budget.
    rule = CiWidthStop(GAMMA, width=2.0, min_runs=8)
    stopped = balance_profile(
        protocol, factories, GAMMA, n_runs=60, seed=1,
        input_sampler=sampler, runner=SerialRunner(fault=NO_FAULTS),
        early_stop=rule,
    )
    assert all(stopped.per_t[t].n_runs < 60 for t in (1, 2))

    # Both passthroughs behave identically under the pool backend.
    pooled = balance_profile(
        protocol, factories, GAMMA, n_runs=60, seed=1,
        input_sampler=lambda rng: (1, 2, 3), runner=pool(2, chunk_size=16),
        early_stop=rule,
    )
    assert pooled.per_t == stopped.per_t


def test_simulation_distributions_identical_across_backends():
    from repro.adversaries.aborting import AbortAtRound

    builder = lambda: AbortAtRound({0}, 1)  # noqa: E731
    serial = opt2sfe_outcome_distributions(builder, 0, n_runs=30, seed=9, bits=8)
    parallel = opt2sfe_outcome_distributions(
        builder, 0, n_runs=30, seed=9, bits=8, runner=pool(2, chunk_size=8)
    )
    assert serial == parallel


def test_reconstruction_identical_across_backends():
    protocol = Opt2SfeProtocol(make_swap(8))
    a = measure_reconstruction_rounds(protocol, n_runs=20, seed=4)
    b = measure_reconstruction_rounds(
        protocol, n_runs=20, seed=4, runner=pool(2)
    )
    assert a == b


# -- adaptive early stopping ------------------------------------------------


def test_early_stop_spends_less_than_budget():
    protocol = Opt2SfeProtocol(make_swap(8))
    factory = strategy_space_for_protocol(protocol)[1]
    rule = UtilityBoundStop(GAMMA, bound=0.95, min_runs=32)
    counts = run_batch(protocol, factory, 400, seed=3, early_stop=rule)
    assert counts.total < 400
    assert counts.run_stats.stopped_early

    # Without a rule the full budget is spent.
    full = run_batch(protocol, factory, 100, seed=3)
    assert full.total == 100
    assert not full.run_stats.stopped_early


def test_early_stop_same_cutoff_serial_and_pool():
    protocol = Opt2SfeProtocol(make_swap(8))
    factory = strategy_space_for_protocol(protocol)[1]
    rule = UtilityBoundStop(GAMMA, bound=0.95, min_runs=16)
    serial = run_batch(
        protocol, factory, 300, seed=8, runner=SerialRunner(chunk_size=25),
        early_stop=rule,
    )
    parallel = run_batch(
        protocol, factory, 300, seed=8, runner=pool(3, chunk_size=25),
        early_stop=rule,
    )
    assert serial == parallel
    assert serial.total < 300

    # Chunk boundaries are deterministic, so the cutoff is stable.
    again = run_batch(
        protocol, factory, 300, seed=8, runner=SerialRunner(chunk_size=25),
        early_stop=rule,
    )
    assert again == serial


def test_ci_width_stop():
    protocol = DummyProtocol(make_swap(8))
    factory = strategy_space_for_protocol(protocol)[0]
    rule = CiWidthStop(GAMMA, width=2.0, min_runs=16)  # trivially wide
    counts = run_batch(protocol, factory, 200, seed=0, early_stop=rule)
    assert counts.total < 200

    est = estimate_utility(
        protocol, factory, GAMMA, n_runs=200, seed=0, early_stop=rule
    )
    assert est.n_runs == counts.total


# -- jobs resolution and stats ----------------------------------------------


class TestJobsResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        assert isinstance(resolve_runner(None), ProcessPoolRunner)

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert isinstance(resolve_runner(None), SerialRunner)

    def test_zero_means_all_cpus(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_env_garbage_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)

    def test_env_negative_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "-3")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)

    def test_env_auto_means_all_cpus(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert resolve_jobs(None) == (os.cpu_count() or 1)


class TestRunStats:
    def test_run_batch_attaches_stats(self):
        protocol = DummyProtocol(make_swap(8))
        factory = strategy_space_for_protocol(protocol)[0]
        counts = run_batch(protocol, factory, 50, seed=1)
        stats = counts.run_stats
        assert isinstance(stats, RunStats)
        assert stats.requested == stats.executions == 50
        assert stats.backend == "serial"
        assert stats.wall_clock_s > 0
        assert stats.executions_per_sec > 0

    def test_pool_stats_and_export(self):
        protocol = DummyProtocol(make_swap(8))
        factories = strategy_space_for_protocol(protocol)[:2]
        runner = pool(2, chunk_size=10)
        sweep_strategies(protocol, factories, GAMMA, n_runs=30, runner=runner)
        stats = runner.last_stats
        assert stats.backend == "process-pool"
        assert stats.jobs == 2
        assert stats.n_tasks == 2
        assert stats.n_chunks == 6
        assert stats.executions == 60
        d = to_dict(stats)
        assert d == run_stats_to_dict(stats)
        assert d["backend"] == "process-pool"
        assert d["executions_per_sec"] == stats.executions_per_sec

    def test_small_batches_fall_back_to_serial(self):
        protocol = DummyProtocol(make_swap(8))
        factory = strategy_space_for_protocol(protocol)[0]
        runner = ProcessPoolRunner(4)  # default small-batch threshold
        runner.run_one(ExecutionTask(protocol, factory, 10, seed=0))
        assert runner.last_stats.backend == "serial"
