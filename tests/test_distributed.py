"""Distributed runner venue tests: wire framing, the task-spec codec,
partial encoding, worker-address parsing, and localhost coordinator ↔
subprocess-worker end-to-end runs (bit-identity with the serial venue,
worker death and reassignment, wedged-chunk deadlines, and total-loss
degradation to in-process replay).

The e2e tests spawn real ``repro worker`` subprocesses on port 0 and
read the announced port from stdout, so nothing here assumes a free
well-known port.  Explicit ``retry``/``fault`` arguments keep the suite
stable whatever ``REPRO_FAULT_*`` the environment sets.
"""

import json
import os
import socket
import struct
import subprocess
import sys
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

import repro
from repro.adversaries import strategy_space_for_protocol
from repro.analysis import run_batch, sweep_strategies
from repro.core import FairnessEvent, PayoffVector
from repro.core.utility import EventCounts
from repro.crypto import Rng
from repro.functions import make_and, make_concat, make_contract_exchange, make_swap
from repro.gmw import ThresholdGmwProtocol
from repro.protocols import (
    CoinOrderedContractSigning,
    DummyProtocol,
    GordonKatzProtocol,
    GradualReleaseProtocol,
    NaiveContractSigning,
    Opt2SfeProtocol,
    OptNSfeProtocol,
    SingleRoundProtocol,
    UnbalancedOptProtocol,
)
from repro.runtime import (
    NO_FAULTS,
    DistributedRunner,
    ExecutionTask,
    FaultSpec,
    RetryPolicy,
    SerialRunner,
    parse_workers,
    resolve_heartbeat,
)
from repro.runtime.distributed import (
    CodecError,
    ConnectionClosed,
    FrameError,
    MAX_FRAME,
    WireError,
    decode_partial,
    decode_task,
    encode_partial,
    encode_task,
    recv_frame,
    send_frame,
    task_fingerprint,
)
from repro.runtime.distributed.codec import tag_value, untag_value

GAMMA = PayoffVector(0.0, 0.0, 1.0, 0.5)

#: Fast retry ladder for tests.
FAST = dict(backoff_s=0.01, backoff_multiplier=1.0)


# -- wire framing ------------------------------------------------------------


def _pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


class TestFraming:
    def test_round_trip(self):
        a, b = _pair()
        try:
            for msg in (
                {"type": "ready"},
                {"type": "chunk", "task": 0, "start": 0, "stop": 40, "gen": 3},
                {"nested": {"deep": [1, 2, {"x": "y"}]}, "unicode": "Γ+fair ≥ ½"},
            ):
                send_frame(a, msg)
                assert recv_frame(b) == msg
        finally:
            a.close()
            b.close()

    def test_oversized_frame_rejected_on_both_sides(self):
        a, b = _pair()
        try:
            with pytest.raises(FrameError):
                send_frame(a, {"blob": "x" * MAX_FRAME})
            # A forged oversized length prefix is rejected before any
            # attempt to allocate/read the body.
            a.sendall(struct.pack(">I", MAX_FRAME + 1))
            with pytest.raises(FrameError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_truncated_frame_is_connection_closed(self):
        a, b = _pair()
        try:
            payload = json.dumps({"type": "ready"}).encode()
            frame = struct.pack(">I", len(payload)) + payload
            a.sendall(frame[: len(frame) - 3])
            a.close()
            with pytest.raises(ConnectionClosed):
                recv_frame(b)
        finally:
            b.close()

    def test_clean_eof_is_connection_closed(self):
        a, b = _pair()
        a.close()
        try:
            with pytest.raises(ConnectionClosed):
                recv_frame(b)
        finally:
            b.close()

    @pytest.mark.parametrize(
        "body",
        [b"not json at all", b"\xff\xfe\x00garbage", b"[1, 2, 3]", b'"str"'],
        ids=["not-json", "not-utf8", "array", "scalar"],
    )
    def test_garbage_and_non_object_bodies_rejected(self, body):
        a, b = _pair()
        try:
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(FrameError):
                recv_frame(b)
        finally:
            a.close()
            b.close()


# -- partial-value encoding --------------------------------------------------


class TestPartialCodec:
    def test_int_and_tuple_round_trip(self):
        for part in (0, 17, (1, 2, 3), (0,)):
            assert decode_partial(encode_partial(part)) == part

    def test_bool_rejected(self):
        # bool is an int subclass; letting it through would silently
        # change merge semantics.
        with pytest.raises(WireError):
            encode_partial(True)

    def test_event_counts_round_trip_preserves_key_order(self):
        part = EventCounts()
        # Insertion order matters downstream: estimate_from_counts sums
        # floats in dict order, so the wire form must preserve it.
        part.record(FairnessEvent.E01, frozenset({1}))
        part.record(FairnessEvent.E11, frozenset({0}))
        part.record(FairnessEvent.E01, frozenset({0, 1}))
        part.record(FairnessEvent.E10, frozenset({0}))
        dec = decode_partial(encode_partial(part))
        assert dec == part
        assert list(dec.counts.keys()) == list(part.counts.keys())
        assert list(dec.corruption_counts.keys()) == list(
            part.corruption_counts.keys()
        )

    def test_wire_form_is_json_safe(self):
        part = EventCounts()
        part.record(FairnessEvent.E00, frozenset({0}))
        wire = encode_partial(part)
        assert json.loads(json.dumps(wire)) == wire

    def test_tag_value_round_trip(self):
        for value in (0, 1, True, False, "0", "text", 2.5, None,
                      (1, "x"), b"\x00\xff", ((0, 1), "nested")):
            assert untag_value(tag_value(value)) == value
        # The int/str/bool distinction survives (encode_seed is
        # type-tagged, so "0", 0, and False must stay distinct).
        assert untag_value(tag_value(0)) is not True
        assert isinstance(untag_value(tag_value("0")), str)
        assert isinstance(untag_value(tag_value(0)), int)
        assert isinstance(untag_value(tag_value(True)), bool)


# -- task-spec codec ---------------------------------------------------------


def _codec_zoo():
    return [
        DummyProtocol(make_swap(8)),
        Opt2SfeProtocol(make_swap(8)),
        GordonKatzProtocol(make_and(), p=2),
        OptNSfeProtocol(make_concat(3, 8)),
        SingleRoundProtocol(make_swap(16)),
        GradualReleaseProtocol(make_and()),
        NaiveContractSigning(make_contract_exchange(16)),
        CoinOrderedContractSigning(make_contract_exchange(16)),
        UnbalancedOptProtocol(make_concat(3, 8)),
        ThresholdGmwProtocol(make_concat(3, 8)),
    ]


class TestTaskCodec:
    def test_every_registered_protocol_strategy_pair_round_trips(self):
        """Whole-space coverage: every (protocol, strategy) pair the
        search layer can produce must survive encode → JSON → decode
        with an identical fingerprint and a behaviourally equal
        adversary."""
        pairs = 0
        for protocol in _codec_zoo():
            for factory in strategy_space_for_protocol(protocol):
                task = ExecutionTask(
                    protocol, factory, n_runs=16, seed=(3, protocol.name)
                )
                spec = encode_task(task)
                assert spec is not None, (protocol.name, factory.name)
                again = decode_task(json.loads(json.dumps(spec)))
                assert task_fingerprint(again) == task_fingerprint(task)
                a = factory(Rng("codec-probe"))
                b = again.factory(Rng("codec-probe"))
                assert type(a) is type(b), (protocol.name, factory.name)
                assert a.__dict__ == b.__dict__, (protocol.name, factory.name)
                pairs += 1
        assert pairs > 100  # the space is genuinely broad

    def test_fingerprint_tamper_detected(self):
        protocol = Opt2SfeProtocol(make_swap(8))
        factory = strategy_space_for_protocol(protocol)[1]
        spec = encode_task(ExecutionTask(protocol, factory, n_runs=8, seed=1))
        spec["fingerprint"] = "0" * len(spec["fingerprint"])
        with pytest.raises(CodecError):
            decode_task(spec)

    def test_opaque_task_is_not_encodable(self):
        class Opaque:
            n_runs = 8

            def run_chunk(self, start, stop):
                return stop - start

        assert encode_task(Opaque()) is None

    def test_anonymous_factory_is_not_encodable(self):
        protocol = Opt2SfeProtocol(make_swap(8))
        task = ExecutionTask(protocol, lambda rng: None, n_runs=8, seed=1)
        assert encode_task(task) is None

    def test_seed_types_stay_distinct(self):
        protocol = Opt2SfeProtocol(make_swap(8))
        factory = strategy_space_for_protocol(protocol)[1]
        for seed in (0, "0", (1, "x"), b"\x07"):
            task = ExecutionTask(protocol, factory, n_runs=8, seed=seed)
            again = decode_task(encode_task(task))
            assert again.seed == seed
            assert type(again.seed) is type(seed)


# -- worker address parsing --------------------------------------------------


class TestParseWorkers:
    def test_string_forms(self):
        assert parse_workers("") == []
        assert parse_workers("h1:9000") == [("h1", 9000)]
        assert parse_workers(" h1:9000 , h2:9001 ") == [
            ("h1", 9000), ("h2", 9001)
        ]

    def test_iterable_forms(self):
        assert parse_workers([("h1", 9000), ["h2", 9001], "h3:9002"]) == [
            ("h1", 9000), ("h2", 9001), ("h3", 9002)
        ]

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "a:1,b:2")
        assert parse_workers(None) == [("a", 1), ("b", 2)]
        monkeypatch.delenv("REPRO_WORKERS")
        assert parse_workers(None) == []

    @pytest.mark.parametrize("bad", ["justhost", ":9000", "h1:port"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_workers(bad)

    @pytest.mark.parametrize("bad", ["h1:0", "h1:70000", "h1:-5"])
    def test_out_of_range_port_names_the_knob(self, bad, monkeypatch):
        # The error must name REPRO_WORKERS: the value may have come from
        # the environment, and "bad port" alone is undebuggable there.
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            parse_workers(None)

    def test_non_integer_port_names_the_knob(self):
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            parse_workers("h1:port")

    def test_runner_requires_at_least_one(self):
        with pytest.raises(ValueError):
            DistributedRunner([])


class TestHeartbeatResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_HEARTBEAT_S", raising=False)
        assert resolve_heartbeat() == 1.0

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_S", "5")
        assert resolve_heartbeat(0.25) == 0.25

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_S", "2.5")
        assert resolve_heartbeat() == 2.5

    @pytest.mark.parametrize("bad", ["soon", "0", "-1", "nan"])
    def test_garbage_env_names_the_variable(self, bad, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_S", bad)
        with pytest.raises(ValueError, match="REPRO_HEARTBEAT_S"):
            resolve_heartbeat()

    def test_explicit_non_positive_rejected(self):
        with pytest.raises(ValueError):
            resolve_heartbeat(0.0)


# -- localhost end-to-end ----------------------------------------------------


def _src_path():
    return str(Path(repro.__file__).resolve().parents[1])


@contextmanager
def _worker_fleet(n, env_extra=None):
    """Spawn ``n`` ``repro worker --once`` subprocesses on port 0 and
    yield their announced addresses."""
    env = os.environ.copy()
    env["PYTHONPATH"] = _src_path() + os.pathsep + env.get("PYTHONPATH", "")
    env.update(env_extra or {})
    procs, addrs = [], []
    try:
        for _ in range(n):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--listen", "127.0.0.1:0", "--once"],
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                env=env,
                text=True,
            )
            procs.append(proc)
            info = json.loads(proc.stdout.readline())
            assert info["event"] == "listening"
            addrs.append((info["host"], info["port"]))
        yield addrs
    finally:
        deadline = time.monotonic() + 5.0
        for proc in procs:
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


def _workload():
    protocol = Opt2SfeProtocol(make_swap(8))
    factory = strategy_space_for_protocol(protocol)[1]
    return protocol, factory


def _clean_serial(protocol, factory, n_runs, seed, **kw):
    return run_batch(
        protocol, factory, n_runs, seed=seed,
        runner=SerialRunner(fault=NO_FAULTS), **kw,
    )


class TestEndToEnd:
    def test_two_workers_bit_identical_with_serial(self):
        protocol, factory = _workload()
        clean = _clean_serial(protocol, factory, 120, seed=7)
        with _worker_fleet(2) as addrs:
            runner = DistributedRunner(
                addrs, chunk_size=20,
                retry=RetryPolicy(max_retries=2, **FAST), fault=NO_FAULTS,
            )
            counts = run_batch(protocol, factory, 120, seed=7, runner=runner)
        assert counts == clean
        stats = counts.run_stats
        assert stats.backend == "distributed"
        assert stats.jobs == 2
        assert stats.executions == 120
        assert stats.worker_deaths == 0
        # Every chunk carries its worker attribution, and (with two
        # live workers and six chunks) the fleet actually shared work.
        workers = {c.worker for c in stats.chunks if c.outcome == "ok"}
        assert all(w for w in workers)
        assert len(workers) >= 1

    def test_sweep_across_venues_bit_identical(self):
        protocol = Opt2SfeProtocol(make_swap(8))
        factories = strategy_space_for_protocol(protocol)[:3]
        serial = sweep_strategies(
            protocol, factories, GAMMA, n_runs=40, seed=(11, "dist")
        )
        with _worker_fleet(2) as addrs:
            distributed = sweep_strategies(
                protocol, factories, GAMMA, n_runs=40, seed=(11, "dist"),
                runner=DistributedRunner(addrs, chunk_size=10, fault=NO_FAULTS),
            )
        assert serial == distributed

    def test_worker_killed_mid_batch_chunks_reassigned(self):
        """A ``kind="exit"`` injected fault kills the worker process
        mid-batch; the coordinator must notice the death, requeue the
        chunk, and still finish bit-identically."""
        protocol, factory = _workload()
        clean = _clean_serial(protocol, factory, 120, seed=7)
        with _worker_fleet(2) as addrs:
            runner = DistributedRunner(
                addrs, chunk_size=20,
                retry=RetryPolicy(max_retries=3, **FAST),
                fault=FaultSpec(
                    rate=0.6, kind="exit", seed="kill", max_consecutive=1
                ),
            )
            counts = run_batch(protocol, factory, 120, seed=7, runner=runner)
        assert counts == clean
        stats = counts.run_stats
        assert stats.backend == "distributed"
        assert stats.worker_deaths >= 1
        assert stats.failed_attempts >= stats.worker_deaths
        assert stats.executions == 120

    def test_total_worker_loss_degrades_to_local_replay(self):
        """When every worker dies, the remaining spans resolve through
        the in-process ladder — the batch always completes."""
        protocol, factory = _workload()
        clean = _clean_serial(protocol, factory, 80, seed=7)
        with _worker_fleet(2) as addrs:
            runner = DistributedRunner(
                addrs, chunk_size=20,
                retry=RetryPolicy(max_retries=1, **FAST),
                fault=FaultSpec(
                    rate=1.0, kind="exit", seed="carnage", max_consecutive=8
                ),
            )
            counts = run_batch(protocol, factory, 80, seed=7, runner=runner)
        assert counts == clean
        stats = counts.run_stats
        assert stats.worker_deaths == 2
        assert stats.degraded
        assert stats.serial_replays >= 1
        assert stats.executions == 80

    def test_wedged_chunk_reassigned_without_killing_worker(self):
        """A ``kind="sleep"`` fault stalls the chunk but heartbeats keep
        flowing: the chunk *deadline* (not the death detector) fires,
        the span is reassigned under a bumped generation, and the
        sleeper survives to serve again."""
        protocol, factory = _workload()
        clean = _clean_serial(protocol, factory, 80, seed=7)
        with _worker_fleet(2) as addrs:
            runner = DistributedRunner(
                addrs, chunk_size=40,
                retry=RetryPolicy(max_retries=2, chunk_timeout_s=0.5, **FAST),
                fault=FaultSpec(
                    rate=1.0, kind="sleep", sleep_s=2.0, seed="wedge",
                    max_consecutive=1,
                ),
            )
            counts = run_batch(protocol, factory, 80, seed=7, runner=runner)
        assert counts == clean
        stats = counts.run_stats
        assert stats.timeouts >= 1
        assert stats.worker_deaths == 0
        assert stats.executions == 80

    def test_unreachable_fleet_falls_back_to_serial(self):
        protocol, factory = _workload()
        clean = _clean_serial(protocol, factory, 40, seed=7)
        # Hold a bound-but-not-listening socket for the whole test: the
        # port stays reserved (connects get ECONNREFUSED) instead of the
        # old bind/close dance, which let the OS re-issue the port to
        # another process between close() and the runner's connect.
        probe = socket.socket()
        try:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
            runner = DistributedRunner(
                [("127.0.0.1", port)], connect_timeout_s=0.3, fault=NO_FAULTS,
            )
            counts = run_batch(protocol, factory, 40, seed=7, runner=runner)
        finally:
            probe.close()
        assert counts == clean
        assert runner.last_stats.backend == "serial"

    def test_early_stop_halts_at_identical_run_index(self):
        from repro.runtime import UtilityBoundStop

        protocol, factory = _workload()
        rule = UtilityBoundStop(GAMMA, bound=0.95, min_runs=16)
        serial = run_batch(
            protocol, factory, 300, seed=8,
            runner=SerialRunner(chunk_size=25, fault=NO_FAULTS),
            early_stop=rule,
        )
        with _worker_fleet(2) as addrs:
            distributed = run_batch(
                protocol, factory, 300, seed=8,
                runner=DistributedRunner(addrs, chunk_size=25, fault=NO_FAULTS),
                early_stop=rule,
            )
        assert serial == distributed
        assert serial.total == distributed.total < 300
        assert distributed.run_stats.stopped_early
        # (No cancelled_chunks assertion: fast workers may legitimately
        # resolve every span before the fold reaches the stop index —
        # out-of-order resolution changes accounting, never the value.)
