"""Application-level integration: the extra functions through the full
fairness pipeline (the workloads the examples build on)."""

import pytest

from repro.adversaries import LockWatchingAborter, PassiveAdversary, fixed
from repro.analysis import (
    balance_profile,
    estimate_utility,
    measure_cost,
    u_opt_nsfe,
)
from repro.core import (
    STANDARD_GAMMA,
    balanced_sum_bound,
    is_utility_balanced,
    monte_carlo_tolerance,
)
from repro.crypto import Rng
from repro.engine import run_execution
from repro.functions import (
    make_max,
    make_public_version,
    make_rotate,
    make_set_intersection,
    make_vote,
)
from repro.gmw import ThresholdGmwProtocol
from repro.protocols import GordonKatzProtocol, Opt2SfeProtocol, OptNSfeProtocol


class TestAuctionPipeline:
    """The sealed-bid auction example's workload (max over bids)."""

    def setup_method(self):
        self.n = 4
        self.func = make_max(self.n, 6)
        self.protocol = OptNSfeProtocol(self.func)

    def test_correctness(self):
        result = run_execution(
            self.protocol, (10, 55, 7, 31), PassiveAdversary(), Rng(1)
        )
        assert all(rec.value == (1, 55) for rec in result.outputs.values())

    def test_balance_profile(self):
        factories = {
            t: [fixed(f"c{t}", lambda t=t: LockWatchingAborter(set(range(t))))]
            for t in range(1, self.n)
        }
        profile = balance_profile(
            self.protocol, factories, STANDARD_GAMMA, n_runs=250, seed="auc"
        )
        tol = (self.n - 1) * monte_carlo_tolerance(250)
        assert is_utility_balanced(profile, tol=tol)
        for t in range(1, self.n):
            assert profile.per_t[t].mean == pytest.approx(
                u_opt_nsfe(STANDARD_GAMMA, self.n, t), abs=0.1
            )


class TestVotePipeline:
    def test_threshold_gmw_on_vote(self):
        func = make_vote(5)
        protocol = ThresholdGmwProtocol(func)
        result = run_execution(
            protocol, (1, 1, 1, 0, 0), PassiveAdversary(), Rng(2)
        )
        assert all(rec.value == 1 for rec in result.outputs.values())

    def test_minority_coalition_cannot_cheat_vote(self):
        func = make_vote(5)
        protocol = ThresholdGmwProtocol(func)
        est = estimate_utility(
            protocol,
            fixed("c2", lambda: LockWatchingAborter({0, 1})),
            STANDARD_GAMMA,
            n_runs=100,
            seed="vote",
        )
        assert est.mean == pytest.approx(STANDARD_GAMMA.gamma11)


class TestPsiPipeline:
    """Private set intersection under both fairness regimes."""

    def test_opt2sfe_on_psi(self):
        func = make_set_intersection(4)
        protocol = Opt2SfeProtocol(func)
        result = run_execution(
            protocol, (0b1100, 0b1010), PassiveAdversary(), Rng(3)
        )
        assert result.outputs[0].value == 0b1000

    def test_opt2sfe_psi_fairness(self):
        func = make_set_intersection(4)
        est = estimate_utility(
            Opt2SfeProtocol(func),
            fixed("l1", lambda: LockWatchingAborter({1})),
            STANDARD_GAMMA,
            n_runs=300,
            seed="psi",
        )
        assert est.mean == pytest.approx(0.75, abs=0.09)

    def test_gk_on_psi_small_universe(self):
        func = make_set_intersection(2)
        protocol = GordonKatzProtocol(func, p=2)
        result = run_execution(
            protocol, (0b11, 0b10), PassiveAdversary(), Rng(4)
        )
        assert result.outputs[0].value == 0b10

    def test_gk_round_cost_scales_with_universe(self):
        small = GordonKatzProtocol(make_set_intersection(1), p=2)
        large = GordonKatzProtocol(make_set_intersection(3), p=2)
        assert large.reveal_rounds > small.reveal_rounds


class TestPrivateRotationPipeline:
    """The Appendix-B transform end to end with an attack."""

    def test_lifted_rotation_fairness(self):
        base = make_rotate(2, 8)
        pub = make_public_version(base)
        est = estimate_utility(
            Opt2SfeProtocol(pub),
            fixed("l0", lambda: LockWatchingAborter({0})),
            STANDARD_GAMMA,
            n_runs=250,
            seed="rot",
        )
        assert est.mean == pytest.approx(0.75, abs=0.1)

    def test_cost_of_lifting_is_free(self):
        """The OTP transform adds no rounds or messages."""
        base_cost = measure_cost(
            Opt2SfeProtocol(make_rotate(2, 8)), n_runs=3, seed="c1"
        )
        lifted_cost = measure_cost(
            Opt2SfeProtocol(make_public_version(make_rotate(2, 8))),
            n_runs=3,
            seed="c2",
        )
        assert lifted_cost.rounds == base_cost.rounds
        assert lifted_cost.total_messages == base_cost.total_messages
