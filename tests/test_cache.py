"""Hot-path optimization layer: memoization, chunk cache, instrumentation.

The soundness bar for every cache in the runtime is bit-identity: a memo
hit, a disk-cache hit, or a backend switch may never change a single
event count.  These tests pin that, plus the key-sensitivity properties
(different seed / fault config / protocol / salt ⇒ different keys) and
the strict opt-in-ness of the persistent cache.
"""

import os

from repro.adversaries import strategy_space_for_protocol
from repro.circuits.compiler import compile_truth_table, memo_counters
from repro.engine.faults import ChannelFaultModel, EngineFaults, PartyFaultModel
from repro.functions import make_and, make_swap
from repro.gmw import gmw_from_spec
from repro.protocols import Opt2SfeProtocol
from repro.runtime import (
    CACHE_SCHEMA_VERSION,
    ENV_CACHE_DIR,
    ChunkCache,
    ExecutionTask,
    ProcessPoolRunner,
    SerialRunner,
    resolve_cache,
    resolve_runner,
)
from repro.runtime.cache import (
    instrumentation_delta,
    instrumentation_snapshot,
)


def _engine_faults(loss=0.1, crash=0.0, seed="f"):
    return EngineFaults(
        channel=ChannelFaultModel(loss=loss, seed=(seed, "chan")),
        party=(
            PartyFaultModel(crash_rate=crash, seed=(seed, "party"))
            if crash
            else None
        ),
    )


def _tasks(n_runs=120, seed="cache-test", faults=None):
    protocol = Opt2SfeProtocol(make_swap(16))
    space = strategy_space_for_protocol(protocol)[:3]
    return [
        ExecutionTask(
            protocol, f, n_runs, seed=(seed, f.name), faults=faults
        )
        for f in space
    ]


# -- setup memoization --------------------------------------------------------


class TestSetupMemos:
    def test_circuit_compilation_is_content_memoized(self):
        and_spec = make_and()

        def global_func(inputs):
            return and_spec.outputs_for(inputs)[0]

        c1 = compile_truth_table(global_func, [1, 1], 1, 2)
        c2 = compile_truth_table(global_func, [1, 1], 1, 2)
        assert c1 is c2  # same content ⇒ same immutable circuit object

    def test_gmw_from_spec_reuses_circuit(self):
        a = gmw_from_spec(make_and(), [1, 1])
        b = gmw_from_spec(make_and(), [1, 1])
        assert a.circuit is b.circuit
        assert a.cache_key == b.cache_key

    def test_different_specs_do_not_collide(self):
        from repro.functions import make_xor

        a = gmw_from_spec(make_and(), [1, 1])
        x = gmw_from_spec(make_xor(), [1, 1])
        assert a.circuit is not x.circuit
        assert a.cache_key != x.cache_key

    def test_memo_counters_shape(self):
        counters = memo_counters()
        assert set(counters) == {"hits", "misses"}

    def test_and_layers_cached_copy_is_mutation_safe(self):
        proto = gmw_from_spec(make_and(), [1, 1])
        layers = proto.circuit.and_layers()
        if layers:
            layers[0].clear()
        assert proto.circuit.and_layers() != layers or not layers


# -- chunk-cache keys ---------------------------------------------------------


class TestChunkCacheKeys:
    def test_key_is_deterministic(self, tmp_path):
        cache = ChunkCache(tmp_path)
        (task,) = _tasks()[:1]
        assert cache.key_for(task, 0, 10) == cache.key_for(task, 0, 10)

    def test_key_changes_with_span_seed_salt(self, tmp_path):
        cache = ChunkCache(tmp_path)
        salted = ChunkCache(tmp_path, salt="gamma=0,0,1,0.5")
        (task,) = _tasks()[:1]
        (other_seed,) = _tasks(seed="other")[:1]
        base = cache.key_for(task, 0, 10)
        assert cache.key_for(task, 0, 20) != base
        assert cache.key_for(task, 10, 20) != base
        assert cache.key_for(other_seed, 0, 10) != base
        assert salted.key_for(task, 0, 10) != base

    def test_key_changes_with_fault_config(self, tmp_path):
        cache = ChunkCache(tmp_path)
        (plain,) = _tasks()[:1]
        (faulty,) = _tasks(faults=_engine_faults(loss=0.1))[:1]
        (faultier,) = _tasks(faults=_engine_faults(loss=0.2))[:1]
        keys = {
            cache.key_for(t, 0, 10) for t in (plain, faulty, faultier)
        }
        assert len(keys) == 3

    def test_key_changes_with_protocol_and_strategy(self, tmp_path):
        cache = ChunkCache(tmp_path)
        t2sfe = _tasks()[0]
        gmw = gmw_from_spec(make_and(), [1, 1])
        gmw_space = strategy_space_for_protocol(gmw)[:2]
        gmw_tasks = [
            ExecutionTask(gmw, f, 120, seed=("cache-test", f.name))
            for f in gmw_space
        ]
        keys = {cache.key_for(t, 0, 10) for t in [t2sfe] + gmw_tasks}
        assert len(keys) == 3

    def test_opaque_tasks_are_never_cached(self, tmp_path):
        cache = ChunkCache(tmp_path)

        class Opaque:
            n_runs = 10

            def run_chunk(self, start, stop):
                return stop - start

        assert cache.key_for(Opaque(), 0, 10) is None

        (task,) = _tasks()[:1]
        task.input_sampler = lambda rng: (0, 0)  # no cache_token
        assert cache.key_for(task, 0, 10) is None

    def test_schema_version_in_key(self, tmp_path, monkeypatch):
        import repro.runtime.cache as cache_mod

        cache = ChunkCache(tmp_path)
        (task,) = _tasks()[:1]
        before = cache.key_for(task, 0, 10)
        monkeypatch.setattr(
            cache_mod, "CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1
        )
        assert cache.key_for(task, 0, 10) != before


# -- chunk-cache correctness --------------------------------------------------


class TestChunkCacheCorrectness:
    def test_cached_equals_uncached_serial(self, tmp_path):
        tasks = _tasks()
        base = SerialRunner().run(tasks)
        cold = SerialRunner(cache=ChunkCache(tmp_path))
        warm = SerialRunner(cache=ChunkCache(tmp_path))
        assert cold.run(tasks) == base
        assert warm.run(tasks) == base
        assert cold.last_stats.cache_stores == cold.last_stats.n_chunks
        assert warm.last_stats.cache_hits == warm.last_stats.n_chunks
        assert warm.last_stats.cache_misses == 0

    def test_pool_shares_serial_cache_entries(self, tmp_path):
        tasks = _tasks()
        base = SerialRunner().run(tasks)
        SerialRunner(cache=ChunkCache(tmp_path)).run(tasks)
        pool = ProcessPoolRunner(
            2, min_parallel_runs=0, cache=ChunkCache(tmp_path)
        )
        assert pool.run(tasks) == base
        stats = pool.last_stats
        if stats.backend == "process-pool":  # fork available
            assert stats.cache_hits == stats.n_chunks

    def test_cached_under_engine_faults(self, tmp_path):
        faults = _engine_faults(loss=0.15, crash=0.05, seed="cache-faults")
        tasks = _tasks(faults=faults)
        base = SerialRunner().run(tasks)
        cold = SerialRunner(cache=ChunkCache(tmp_path))
        warm = SerialRunner(cache=ChunkCache(tmp_path))
        assert cold.run(tasks) == base
        assert warm.run(tasks) == base
        assert warm.last_stats.cache_hits > 0

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        tasks = _tasks()
        base = SerialRunner().run(tasks)
        SerialRunner(cache=ChunkCache(tmp_path)).run(tasks)
        entries = list(tmp_path.glob("*/*.pkl"))
        assert entries
        for entry in entries:
            entry.write_bytes(b"not a pickle")
        repaired = SerialRunner(cache=ChunkCache(tmp_path))
        assert repaired.run(tasks) == base
        stats = repaired.last_stats
        # Each damaged entry is detected, counted as corrupt AND a miss,
        # and quarantined aside so it cannot poison the next lookup.
        assert stats.cache_corrupt_entries == len(entries)
        assert stats.cache_misses >= len(entries)
        assert not list(tmp_path.glob("*/*.pkl")) or all(
            e.suffix == ".pkl" for e in tmp_path.glob("*/*.pkl")
        )
        assert len(list(tmp_path.glob("*/*.corrupt"))) == len(entries)

    def test_bitflip_checksum_mismatch_is_quarantined(self, tmp_path):
        tasks = _tasks()
        base = SerialRunner().run(tasks)
        SerialRunner(cache=ChunkCache(tmp_path)).run(tasks)
        entry = sorted(tmp_path.glob("*/*.pkl"))[0]
        blob = bytearray(entry.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # magic stays intact, payload does not
        entry.write_bytes(bytes(blob))
        repaired = SerialRunner(cache=ChunkCache(tmp_path))
        assert repaired.run(tasks) == base
        stats = repaired.last_stats
        assert stats.cache_corrupt_entries == 1
        assert stats.cache_hits > 0  # undamaged entries still serve
        assert entry.with_suffix(".corrupt").exists()

    def test_write_error_counted(self, tmp_path):
        # chmod tricks do not bind as root, so make the store path
        # unusable structurally: the cache root becomes a regular file,
        # and every entry write then fails with NotADirectoryError.
        import shutil

        tasks = _tasks()
        root = tmp_path / "cache"
        cache = ChunkCache(root)
        shutil.rmtree(root)
        root.write_bytes(b"in the way")
        runner = SerialRunner(cache=cache)
        base = SerialRunner().run(tasks)
        assert runner.run(tasks) == base  # the cache may never fail a batch
        assert runner.last_stats.cache_write_errors > 0
        assert runner.last_stats.cache_stores == 0

    def test_partial_prefix_reuse_across_budgets(self, tmp_path):
        # A longer sweep with the same seed shares its common chunk
        # prefix with a shorter one (n_runs is not in the key).
        chunk = 30
        short = _tasks(n_runs=60)
        long = _tasks(n_runs=120)
        SerialRunner(chunk_size=chunk, cache=ChunkCache(tmp_path)).run(short)
        runner = SerialRunner(chunk_size=chunk, cache=ChunkCache(tmp_path))
        assert runner.run(long) == SerialRunner().run(long)
        stats = runner.last_stats
        assert stats.cache_hits > 0 and stats.cache_stores > 0


# -- opt-in-ness and env plumbing --------------------------------------------


class TestCacheOptIn:
    def test_no_env_no_cache(self, monkeypatch):
        monkeypatch.delenv(ENV_CACHE_DIR, raising=False)
        assert ChunkCache.from_env() is None
        assert resolve_cache() is None
        assert SerialRunner().cache is None
        assert resolve_runner(1).cache is None

    def test_env_enables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path))
        cache = ChunkCache.from_env()
        assert cache is not None and cache.root == tmp_path
        assert SerialRunner().cache is not None

    def test_explicit_path_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "env"))
        cache = resolve_cache(tmp_path / "explicit")
        assert cache.root == tmp_path / "explicit"

    def test_store_failure_is_silent(self, tmp_path):
        cache = ChunkCache(tmp_path)
        os.chmod(tmp_path, 0o500)
        try:
            cache.store("ab" * 32, {"x": 1})  # must not raise
        finally:
            os.chmod(tmp_path, 0o700)


# -- instrumentation ----------------------------------------------------------


class TestInstrumentation:
    def test_phase_times_recorded(self):
        runner = SerialRunner()
        runner.run(_tasks(n_runs=40))
        stats = runner.last_stats
        assert stats.execute_s > 0
        assert stats.setup_s >= 0 and stats.classify_s >= 0
        # The phase split must not exceed observed wall time by much
        # (same process, same clock).
        total = stats.setup_s + stats.execute_s + stats.classify_s
        assert total <= stats.wall_clock_s * 1.5 + 0.05

    def test_chunk_stats_carry_phases_and_cache_state(self, tmp_path):
        runner = SerialRunner(cache=ChunkCache(tmp_path))
        runner.run(_tasks(n_runs=40))
        assert all(c.cache == "stored" for c in runner.last_stats.chunks)
        warm = SerialRunner(cache=ChunkCache(tmp_path))
        warm.run(_tasks(n_runs=40))
        assert all(c.cache == "hit" for c in warm.last_stats.chunks)

    def test_delta_is_nonnegative_and_keyed(self):
        before = instrumentation_snapshot()
        SerialRunner().run(_tasks(n_runs=20))
        delta = instrumentation_delta(before)
        assert set(delta) == set(before)
        assert all(v >= 0 for v in delta.values())
        assert delta["execute_s"] > 0

    def test_export_includes_new_fields(self, tmp_path):
        from repro.analysis import run_stats_to_dict

        runner = SerialRunner(cache=ChunkCache(tmp_path))
        runner.run(_tasks(n_runs=40))
        payload = run_stats_to_dict(runner.last_stats)
        for key in (
            "setup_s",
            "execute_s",
            "classify_s",
            "memo_hits",
            "memo_misses",
            "cache_hits",
            "cache_misses",
            "cache_stores",
        ):
            assert key in payload
        assert payload["cache_stores"] == payload["n_chunks"]
        assert all("cache" in c for c in payload["chunks"])

    def test_pool_ships_instrumentation_back(self, tmp_path):
        pool = ProcessPoolRunner(2, min_parallel_runs=0)
        tasks = _tasks(n_runs=120)
        pool.run(tasks)
        stats = pool.last_stats
        if stats.backend == "process-pool":
            assert stats.execute_s > 0  # measured in workers, summed here


# -- CLI surface --------------------------------------------------------------


class TestCliCache:
    def test_cli_cache_flag_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "--runs",
            "60",
            "--cache",
            str(tmp_path),
            "attack",
            "opt-2sfe",
        ]
        main(argv)
        cold = capsys.readouterr().out
        main(argv)
        warm = capsys.readouterr().out
        assert warm == cold
        assert len(ChunkCache(tmp_path)) > 0

    def test_cli_profile_smoke(self, capsys):
        from repro.cli import main

        main(["--runs", "20", "profile", "opt-2sfe", "--top", "5"])
        out = capsys.readouterr().out
        assert "phases:" in out and "cumtime" in out
