"""Hypothesis property suite for service request canonicalization.

The job-key contract the service documents: a key is a pure function of
the *meaning* of a request — invariant under JSON key order and under
spelling defaults out explicitly — and injective across requests that
mean different experiments.  For ``estimate_utility`` the key embeds
the codec's ``task_fingerprint`` of the canonical
:class:`~repro.runtime.tasks.ExecutionTask`, which is exactly the
identity the chunk cache and run journal fingerprint, so a service job
and a CLI run of the same logical task collide in the cache (the
dedupe-across-venues property).
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries import strategy_space_for_protocol
from repro.functions import make_swap
from repro.protocols import Opt2SfeProtocol
from repro.runtime import ExecutionTask
from repro.runtime.cache import ChunkCache
from repro.runtime.distributed.codec import resolve_strategy, task_fingerprint
from repro.service import canonicalize, job_key, job_key_canonical
from repro.service.canonical import DEFAULT_GAMMA, METHOD_SCHEMAS

#: Shared scratch root for ChunkCache instances (keys never touch disk,
#: but the constructor makes its root eagerly).
_CACHE_DIR = tempfile.TemporaryDirectory()

PROTOCOLS = ("opt-2sfe", "single-round", "gradual-release", "dummy",
             "gk-and-p2", "gk-and-p4")
STRATEGIES = ("passive[0]", "lock-watch[0]", "lock-watch[1]",
              "abort@r3[0]", "lw2")

#: Γfair corners/means to draw gammas from (all satisfy in_gamma_fair).
GAMMAS = (
    list(DEFAULT_GAMMA),
    [0.0, -1.0, 1.0, 0.0],
    [0.25, 0.0, 1.0, 0.75],
    [0.5, -0.5, 2.0, 1.0],
)

seeds = st.recursive(
    st.integers(-(2 ** 31), 2 ** 31) | st.text(max_size=8),
    lambda inner: st.lists(inner, max_size=3),
    max_leaves=4,
)

estimate_params = st.fixed_dictionaries(
    {
        "protocol": st.sampled_from(PROTOCOLS),
        "strategy": st.sampled_from(STRATEGIES),
    },
    optional={
        "gamma": st.sampled_from(GAMMAS),
        "runs": st.integers(1, 10_000),
        "seed": seeds,
        "parties": st.just(2),
    },
)


def _permuted(params, rng_order):
    items = sorted(params.items())
    rng_order = rng_order % max(1, len(items))
    rotated = items[rng_order:] + items[:rng_order]
    return dict(rotated)


class TestKeyStability:
    @given(estimate_params, st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_key_invariant_under_key_order(self, params, rotation):
        assert job_key("estimate_utility", params) == job_key(
            "estimate_utility", _permuted(params, rotation)
        )

    @given(estimate_params)
    @settings(max_examples=40, deadline=None)
    def test_key_invariant_under_default_elision(self, params):
        """Spelling a default out explicitly never changes the key."""
        explicit = dict(params)
        for name, default, _ in METHOD_SCHEMAS["estimate_utility"]:
            if name in explicit:
                continue
            if name == "gamma":
                explicit[name] = list(default)
            else:
                explicit[name] = default
        assert job_key("estimate_utility", params) == job_key(
            "estimate_utility", explicit
        )

    @given(estimate_params)
    @settings(max_examples=40, deadline=None)
    def test_key_is_round_trip_stable(self, params):
        """Canonicalize → key twice = canonicalize once → key."""
        canon = canonicalize("estimate_utility", params)
        assert job_key_canonical("estimate_utility", canon) == job_key(
            "estimate_utility", params
        )

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_list_and_tuple_seeds_share_a_key(self, seed):
        def tupled(value):
            if isinstance(value, list):
                return tuple(tupled(v) for v in value)
            return value

        base = {"protocol": "opt-2sfe", "strategy": "lock-watch[0]"}
        a = job_key("estimate_utility", dict(base, seed=seed))
        b = job_key("estimate_utility", dict(base, seed=tupled(seed)))
        assert a == b


class TestKeyInjectivity:
    @given(estimate_params, estimate_params)
    @settings(max_examples=60, deadline=None)
    def test_distinct_canonical_requests_get_distinct_keys(self, a, b):
        ca = canonicalize("estimate_utility", a)
        cb = canonicalize("estimate_utility", b)
        ka = job_key_canonical("estimate_utility", ca)
        kb = job_key_canonical("estimate_utility", cb)
        assert (ka == kb) == (ca == cb)

    def test_methods_never_collide(self):
        """The same params under different methods key differently."""
        sweep = {"protocol": "opt-2sfe", "runs": 64, "seed": 5}
        fault = dict(sweep)
        assert job_key("sweep_strategies", sweep) != job_key(
            "fault_sensitivity", fault
        )

    @given(st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_seed_type_distinguishes_keys(self, a, b):
        """An int seed and its string spelling are different requests
        (encode_seed is type-tagged, and the key inherits that)."""
        base = {"protocol": "opt-2sfe", "strategy": "lock-watch[0]"}
        ka = job_key("estimate_utility", dict(base, seed=a))
        kb = job_key("estimate_utility", dict(base, seed=str(b)))
        assert ka != kb


class TestFingerprintEquality:
    """The job key embeds the batch runtime's own cache fingerprint."""

    @given(estimate_params)
    @settings(max_examples=30, deadline=None)
    def test_service_task_matches_direct_task_fingerprint(self, params):
        from repro.service.canonical import build_task

        canon = canonicalize("estimate_utility", params)
        service_task = build_task(canon)

        direct_task = ExecutionTask(
            service_task.protocol,
            resolve_strategy(canon["strategy"]),
            canon["runs"],
            seed=canon["seed"],
        )
        fp = task_fingerprint(service_task)
        assert fp is not None
        assert fp == task_fingerprint(direct_task)

    @given(st.integers(0, 2 ** 31), st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_chunk_cache_keys_collide_across_venues(self, seed, span_index):
        """A service-built task and the equivalent library-built task
        produce identical chunk-cache keys span for span — the property
        that lets a warm CLI cache serve service jobs bit-identically."""
        canon = canonicalize("estimate_utility", {
            "protocol": "opt-2sfe",
            "strategy": "lock-watch[0]",
            "runs": 64,
            "seed": seed,
        })
        from repro.service.canonical import build_task

        service_task = build_task(canon)
        protocol = Opt2SfeProtocol(make_swap(16))
        factory = next(f for f in strategy_space_for_protocol(protocol)
                       if f.name == "lock-watch[0]")
        direct_task = ExecutionTask(protocol, factory, 64, seed=seed)

        start, stop = span_index * 16, span_index * 16 + 16
        cache = ChunkCache(_CACHE_DIR.name)
        service_key = cache.key_for(service_task, start, stop)
        direct_key = cache.key_for(direct_task, start, stop)
        assert service_key is not None
        assert service_key == direct_key

    def test_key_versions_the_scheme(self):
        """Bumping SERVICE_VERSION must move every key (guards against
        silently reusing stale keys after a schema change)."""
        from repro.service import canonical as mod

        params = {"protocol": "opt-2sfe", "strategy": "lock-watch[0]"}
        before = job_key("estimate_utility", params)
        original = mod.SERVICE_VERSION
        mod.SERVICE_VERSION = original + 1
        try:
            after = job_key("estimate_utility", params)
        finally:
            mod.SERVICE_VERSION = original
        assert before != after
