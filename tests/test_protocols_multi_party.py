"""Multi-party protocol behaviour: ΠOptnSFE, unbalanced-opt, Π′."""

import pytest

from repro.adversaries import (
    AbortAtRound,
    FunctionalityAborter,
    LockWatchingAborter,
    PassiveAdversary,
    SignalDeviator,
    a_bar_i,
    a_bar_nt,
    a_hat_t,
)
from repro.core import FairnessEvent, classify
from repro.crypto import Rng
from repro.engine import run_execution
from repro.functions import make_concat
from repro.gmw import ThresholdGmwProtocol
from repro.protocols import (
    OptNSfeProtocol,
    UnbalancedOptProtocol,
    make_hybrid_balanced,
)


def event_fractions(protocol, adversary_factory, n_runs=200, seed=0):
    from collections import Counter

    master = Rng(seed)
    counts = Counter()
    for k in range(n_runs):
        rng = master.fork(f"run-{k}")
        inputs = protocol.func.sample_inputs(rng.fork("in"))
        result = run_execution(
            protocol, inputs, adversary_factory(), rng.fork("x")
        )
        counts[classify(result, protocol.func)] += 1
    return {e: c / n_runs for e, c in counts.items()}


class TestOptNSfe:
    def setup_method(self):
        self.n = 5
        self.func = make_concat(self.n, 8)
        self.protocol = OptNSfeProtocol(self.func)

    def test_honest_run(self):
        inputs = (1, 2, 3, 4, 5)
        result = run_execution(self.protocol, inputs, PassiveAdversary(), Rng(1))
        assert all(r.value == inputs for r in result.outputs.values())

    @pytest.mark.parametrize("t", [1, 2, 3, 4])
    def test_lemma11_e10_fraction_is_t_over_n(self, t):
        fractions = event_fractions(
            self.protocol,
            lambda: LockWatchingAborter(set(range(t))),
            n_runs=400,
        )
        expected = t / self.n
        assert abs(fractions.get(FairnessEvent.E10, 0) - expected) < 0.09
        # Everything else completes fairly.
        assert (
            fractions.get(FairnessEvent.E10, 0)
            + fractions.get(FairnessEvent.E11, 0)
            == pytest.approx(1.0)
        )

    def test_phase1_abort_aborts_everyone(self):
        fractions = event_fractions(
            self.protocol,
            lambda: FunctionalityAborter({0}, "F_priv_sfe"),
            n_runs=100,
        )
        # Aborting the hybrid after asking: E10 when p0 drew i*, E00 else.
        assert fractions.get(FairnessEvent.E01, 0) == 0
        assert (
            fractions.get(FairnessEvent.E00, 0)
            + fractions.get(FairnessEvent.E10, 0)
            == pytest.approx(1.0)
        )

    def test_forged_broadcast_rejected(self):
        """An adversary cannot make honest parties adopt an unsigned value."""
        from repro.engine import Adversary

        class Forger(Adversary):
            def initial_corruptions(self, n):
                return {0}

            def on_round(self, iface):
                if iface.round == 0:
                    iface.call_functionality(0, "F_priv_sfe", 7)
                if iface.round == 1:
                    iface.broadcast(0, ("opt-nsfe-output", ((9, 9, 9, 9, 9), "bad-sig")))

        inputs = (1, 2, 3, 4, 5)
        result = run_execution(self.protocol, inputs, Forger(), Rng(2))
        for i in range(1, 5):
            rec = result.outputs[i]
            assert rec.is_abort or rec.value == inputs

    def test_a_bar_i_strategies(self):
        """Aī (corrupt all but pi) obtains E10 with probability (n−1)/n."""
        fractions = event_fractions(
            self.protocol, lambda: a_bar_i(self.n, 0), n_runs=300
        )
        assert abs(fractions.get(FairnessEvent.E10, 0) - 4 / 5) < 0.08


class TestUnbalancedOpt:
    def setup_method(self):
        self.n = 4
        self.func = make_concat(self.n, 8)
        self.protocol = UnbalancedOptProtocol(self.func)

    def test_honest_run(self):
        inputs = (1, 2, 3, 4)
        result = run_execution(self.protocol, inputs, PassiveAdversary(), Rng(1))
        assert all(r.value == inputs for r in result.outputs.values())

    def test_lock_watching_matches_opt_nsfe_profile(self):
        fractions = event_fractions(
            self.protocol, lambda: LockWatchingAborter({0}), n_runs=400
        )
        assert abs(fractions.get(FairnessEvent.E10, 0) - 1 / 4) < 0.08

    def test_signal_deviator_boosts_single_corruption(self):
        """Lemma 18: the deviating 1-adversary reaches
        Pr[E10] = 1/n + (n−1)/n · 1/2."""
        fractions = event_fractions(
            self.protocol, lambda: SignalDeviator({0}), n_runs=500
        )
        expected = 1 / 4 + (3 / 4) * 0.5
        assert abs(fractions.get(FairnessEvent.E10, 0) - expected) < 0.08

    def test_needs_three_parties(self):
        with pytest.raises(ValueError):
            UnbalancedOptProtocol(make_concat(2, 8))


class TestHybridBalanced:
    def test_odd_n_uses_threshold_gmw(self):
        protocol = make_hybrid_balanced(make_concat(5, 8))
        assert isinstance(protocol, ThresholdGmwProtocol)
        assert protocol.name.startswith("pi-prime")

    def test_even_n_uses_opt_nsfe(self):
        protocol = make_hybrid_balanced(make_concat(4, 8))
        assert isinstance(protocol, OptNSfeProtocol)

    def test_odd_n_attack_exceeds_opt_bound(self):
        """The ⌈n/2⌉-coalition against odd-n Π′ gets E10 outright,
        beating ΠOptnSFE's (n−1)/n fraction — Π′ is not optimally fair."""
        protocol = make_hybrid_balanced(make_concat(5, 8))
        fractions = event_fractions(
            protocol, lambda: a_hat_t(5, 3), n_runs=100
        )
        assert fractions.get(FairnessEvent.E10, 0) == pytest.approx(1.0)


class TestCoalitionStrategies:
    def test_prefix_suffix_partition(self):
        assert a_hat_t(5, 2)._static_corruptions == {0, 1}
        assert a_bar_nt(5, 2)._static_corruptions == {2, 3, 4}

    def test_invalid_t_rejected(self):
        with pytest.raises(ValueError):
            a_hat_t(5, 0)
        with pytest.raises(ValueError):
            a_bar_nt(5, 5)
        with pytest.raises(ValueError):
            a_bar_i(3, 7)
