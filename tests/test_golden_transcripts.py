"""Golden-transcript regression tests.

Each canonical protocol gets a committed digest of its round-by-round
transcripts under a fixed seed (``tests/data/golden_transcripts.json``).
The digest covers every run's full rendered transcript — senders,
payload summaries, outputs, events — so any drift in protocol logic,
message scheduling, RNG forking, or trace rendering shows up as a digest
mismatch rather than a silently shifted Monte-Carlo estimate.

The same digests must come out of every execution mode: serial, process
pool, cold + warm chunk cache, and the fault-injected retry/replay
ladder.  That is the runtime's core bit-identity contract, checked here
at transcript granularity instead of event-count granularity.

Regenerate after an intentional protocol change::

    PYTHONPATH=src python tests/test_golden_transcripts.py --regenerate
"""

import hashlib
import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.adversaries import LockWatchingAborter, KnownOutputStopper
from repro.crypto.prf import Rng
from repro.engine.execution import run_execution
from repro.engine.trace import render_transcript
from repro.functions import make_and, make_concat, make_swap
from repro.protocols import GordonKatzProtocol, Opt2SfeProtocol, OptNSfeProtocol
from repro.protocols.gradual_release import GradualReleaseProtocol
from repro.runtime import ProcessPoolRunner, SerialRunner
from repro.runtime.cache import ChunkCache
from repro.runtime.retry import FaultSpec, RetryPolicy

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_transcripts.json"

N_RUNS = 12
SEED = "golden-transcripts"


@dataclass
class TranscriptDigestTask:
    """A runner task whose partial is a Counter of per-run digests.

    Mirrors :class:`repro.runtime.tasks.ExecutionTask`'s seed derivation
    exactly (``Rng(seed).fork(f"run-{k}")`` with ``inputs``/``adversary``/
    ``exec`` sub-streams), so run ``k`` replays the estimator's execution
    bit-identically; but instead of classifying events it hashes the full
    rendered transcript.  Counters merge by ``+``, so any chunk partition
    folds to the same digest set.
    """

    protocol: object
    factory: object
    n_runs: int
    seed: object

    @property
    def label(self) -> str:
        return f"transcripts:{self.protocol.name}"

    def cache_material(self):
        return (
            "transcript-digest",
            getattr(self.protocol, "cache_key", self.protocol.name),
            getattr(self.factory, "name", "adversary"),
            self.seed,
        )

    def run_chunk(self, start: int, stop: int) -> Counter:
        master = Rng(self.seed)
        digests = Counter()
        for k in range(start, stop):
            rng = master.fork(f"run-{k}")
            inputs = self.protocol.func.sample_inputs(rng.fork("inputs"))
            adversary = self.factory(rng.fork("adversary"))
            result = run_execution(
                self.protocol, inputs, adversary, rng.fork("exec")
            )
            text = render_transcript(result)
            digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
            digests[f"run-{k}:{digest}"] = 1
        return digests


def _protocols():
    return {
        "gordon_katz": (
            GordonKatzProtocol(make_and(), p=2),
            lambda rng: KnownOutputStopper(0, known_output=1),
        ),
        "opt_2sfe": (
            Opt2SfeProtocol(make_swap(16)),
            lambda rng: LockWatchingAborter({0}),
        ),
        "opt_nsfe": (
            OptNSfeProtocol(make_concat(4, 8)),
            lambda rng: LockWatchingAborter({0, 1}),
        ),
        "gradual_release": (
            GradualReleaseProtocol(make_swap(16)),
            lambda rng: LockWatchingAborter({0}),
        ),
    }


def compute_digest(name: str, runner) -> str:
    """One protocol's combined transcript digest under ``runner``."""
    protocol, factory = _protocols()[name]
    task = TranscriptDigestTask(protocol, factory, N_RUNS, (SEED, name))
    (merged,) = runner.run([task])
    assert sum(merged.values()) == N_RUNS, "a run went missing in the merge"
    combined = "\n".join(sorted(merged))
    return hashlib.sha256(combined.encode("utf-8")).hexdigest()


def _golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


PROTOCOL_NAMES = sorted(_protocols())


class TestGoldenTranscripts:
    @pytest.mark.parametrize("name", PROTOCOL_NAMES)
    def test_serial_matches_golden(self, name):
        assert compute_digest(name, SerialRunner()) == _golden()[name]["digest"]

    @pytest.mark.parametrize("name", PROTOCOL_NAMES)
    def test_pool_matches_golden(self, name):
        runner = ProcessPoolRunner(jobs=2, chunk_size=4, min_parallel_runs=1)
        assert compute_digest(name, runner) == _golden()[name]["digest"]

    @pytest.mark.parametrize("name", PROTOCOL_NAMES)
    def test_warm_cache_matches_golden(self, name, tmp_path):
        cache = ChunkCache(tmp_path / "chunks")
        cold = compute_digest(name, SerialRunner(cache=cache))
        warm_runner = SerialRunner(cache=ChunkCache(tmp_path / "chunks"))
        warm = compute_digest(name, warm_runner)
        assert cold == _golden()[name]["digest"]
        assert warm == _golden()[name]["digest"]
        assert warm_runner.last_stats.cache_hits > 0, "cache never warmed"

    @pytest.mark.parametrize("name", PROTOCOL_NAMES)
    def test_fault_replay_matches_golden(self, name):
        runner = SerialRunner(
            chunk_size=4,
            retry=RetryPolicy(max_retries=1, backoff_s=0.0),
            fault=FaultSpec(rate=0.5, kind="raise", seed="golden-faults"),
        )
        assert compute_digest(name, runner) == _golden()[name]["digest"]
        stats = runner.last_stats
        assert stats.failed_attempts > 0, "fault injection never fired"

    def test_golden_file_covers_every_protocol(self):
        golden = _golden()
        assert sorted(golden) == PROTOCOL_NAMES
        for name, entry in golden.items():
            assert entry["n_runs"] == N_RUNS
            assert entry["seed"] == [SEED, name]
            assert len(entry["digest"]) == 64


def regenerate() -> None:
    import os
    import sys

    # The golden digests define what "correct" means for every backend,
    # so they must only ever be produced by the reference engine: a
    # REPRO_BACKEND override here would let a buggy kernel rewrite its
    # own ground truth.  (Transcript-digest jobs are not ExecutionTasks,
    # so the vectorized backend would fall back anyway — refusing loudly
    # beats relying on that.)
    backend = os.environ.get("REPRO_BACKEND", "").strip()
    if backend and backend != "reference":
        sys.exit(
            f"refusing to regenerate golden transcripts under "
            f"REPRO_BACKEND={backend!r}: digests must come from the "
            f"reference engine (unset it or set it to 'reference')"
        )
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    golden = {
        name: {
            "seed": [SEED, name],
            "n_runs": N_RUNS,
            "digest": compute_digest(name, SerialRunner()),
        }
        for name in PROTOCOL_NAMES
    }
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
