"""Shared fixtures for the test suite."""

import pytest

from repro.core import PayoffVector
from repro.crypto import Rng
from repro.functions import make_and, make_concat, make_swap


@pytest.fixture
def rng():
    return Rng(b"test-suite")


@pytest.fixture
def gamma():
    """The canonical Γ+fair vector used across tests."""
    return PayoffVector(0.0, 0.0, 1.0, 0.5)


@pytest.fixture
def gamma_fair_only():
    """A Γfair vector outside Γ+fair (γ00 > γ11)."""
    return PayoffVector(0.6, 0.0, 1.0, 0.5)


@pytest.fixture
def swap16():
    return make_swap(16)


@pytest.fixture
def and_func():
    return make_and()


@pytest.fixture
def concat5():
    return make_concat(5, 8)
