"""Two-party protocol behaviour: Π1, Π2, ΠOpt2SFE, single-round, dummy."""

import pytest

from repro.adversaries import (
    AbortAtRound,
    FunctionalityAborter,
    LockWatchingAborter,
    PassiveAdversary,
)
from repro.core import FairnessEvent, classify
from repro.crypto import Rng
from repro.engine import run_execution
from repro.functions import make_and, make_contract_exchange, make_swap
from repro.protocols import (
    CoinOrderedContractSigning,
    DummyProtocol,
    NaiveContractSigning,
    Opt2SfeProtocol,
    SingleRoundProtocol,
)


def events_over_runs(protocol, adversary_factory, n_runs=120, seed=0):
    from collections import Counter

    master = Rng(seed)
    counts = Counter()
    for k in range(n_runs):
        rng = master.fork(f"run-{k}")
        inputs = protocol.func.sample_inputs(rng.fork("in"))
        result = run_execution(
            protocol, inputs, adversary_factory(), rng.fork("x")
        )
        event = protocol.classify_result(result)
        if event is None:
            event = classify(result, protocol.func)
        counts[event] += 1
    return counts


class TestNaiveContractSigning:
    def setup_method(self):
        self.protocol = NaiveContractSigning()

    def test_honest_run_swaps_contracts(self):
        result = run_execution(
            self.protocol, (111, 222), PassiveAdversary(), Rng(1)
        )
        assert result.outputs[0].value == 222
        assert result.outputs[1].value == 111

    def test_corrupted_p2_always_unfair(self):
        counts = events_over_runs(
            self.protocol, lambda: LockWatchingAborter({1}), n_runs=60
        )
        assert counts[FairnessEvent.E10] == 60

    def test_corrupted_p1_cannot_cheat(self):
        counts = events_over_runs(
            self.protocol, lambda: LockWatchingAborter({0}), n_runs=60
        )
        assert counts[FairnessEvent.E11] == 60

    def test_abort_before_opening_is_harmless(self):
        counts = events_over_runs(
            self.protocol, lambda: AbortAtRound({1}, 0), n_runs=40
        )
        assert counts[FairnessEvent.E00] == 40


class TestCoinOrderedContractSigning:
    def setup_method(self):
        self.protocol = CoinOrderedContractSigning()

    def test_honest_run(self):
        result = run_execution(
            self.protocol, (111, 222), PassiveAdversary(), Rng(2)
        )
        assert result.outputs[0].value == 222
        assert result.outputs[1].value == 111

    @pytest.mark.parametrize("corrupt", [0, 1])
    def test_lock_watching_halves_unfairness(self, corrupt):
        counts = events_over_runs(
            self.protocol, lambda: LockWatchingAborter({corrupt}), n_runs=300
        )
        frac = counts[FairnessEvent.E10] / 300
        assert 0.38 <= frac <= 0.62
        assert counts[FairnessEvent.E10] + counts[FairnessEvent.E11] == 300

    def test_coin_abort_denies_everyone(self):
        counts = events_over_runs(
            self.protocol, lambda: AbortAtRound({0}, 1, claim=True), n_runs=40
        )
        assert counts[FairnessEvent.E00] == 40

    def test_commitment_binding_enforced(self):
        """A corrupted party sending a mismatched coin opening aborts."""
        from repro.crypto.commitment import Opening
        from repro.engine import Adversary

        class CoinCheat(Adversary):
            def initial_corruptions(self, n):
                return {0}

            def on_round(self, iface):
                if iface.round == 0:
                    from repro.crypto import commit

                    rng = Rng(b"cheat")
                    c1, self.op1 = commit(123, rng)
                    c2, self.op2 = commit(0, rng)
                    iface.send(0, 1, ("commitments", c1, c2))
                if iface.round == 1:
                    # Open to a different bit than committed.
                    iface.send(0, 1, Opening(self.op2.nonce, 1))

        result = run_execution(self.protocol, (1, 2), CoinCheat(), Rng(3))
        assert result.outputs[1].is_abort


class TestOpt2Sfe:
    def setup_method(self):
        self.protocol = Opt2SfeProtocol(make_swap(16))

    def test_honest_run(self):
        result = run_execution(
            self.protocol, (5, 6), PassiveAdversary(), Rng(1)
        )
        assert result.outputs[0].value == 6
        assert result.outputs[1].value == 5

    def test_works_for_and(self):
        protocol = Opt2SfeProtocol(make_and())
        result = run_execution(protocol, (1, 1), PassiveAdversary(), Rng(2))
        assert result.outputs[0].value == 1

    @pytest.mark.parametrize("corrupt", [0, 1])
    def test_theorem3_event_split(self, corrupt):
        """Lock-watching gets E10 iff î lands on the corrupted party."""
        counts = events_over_runs(
            self.protocol, lambda: LockWatchingAborter({corrupt}), n_runs=300
        )
        frac = counts[FairnessEvent.E10] / 300
        assert 0.38 <= frac <= 0.62
        assert counts[FairnessEvent.E10] + counts[FairnessEvent.E11] == 300

    def test_phase1_abort_gives_default_evaluation(self):
        counts = events_over_runs(
            self.protocol,
            lambda: FunctionalityAborter({0}, "F_sharegen2"),
            n_runs=40,
        )
        assert counts[FairnessEvent.E01] == 40

    def test_phase1_refusal_gives_default_evaluation(self):
        counts = events_over_runs(
            self.protocol, lambda: AbortAtRound({0}, 0), n_runs=40
        )
        assert counts[FairnessEvent.E01] == 40

    def test_invalid_share_triggers_default(self):
        """Garbage in reconstruction round 1 → honest falls back to the
        default-input evaluation (protocol spec)."""
        from repro.engine import Adversary

        class GarbageOpener(Adversary):
            def initial_corruptions(self, n):
                return {1}

            def on_round(self, iface):
                if iface.round == 0:
                    iface.call_functionality(1, "F_sharegen2", 7)
                if iface.round == 1:
                    iface.send(1, 0, (12345, b"\x00" * 16))

        result = run_execution(self.protocol, (5, 6), GarbageOpener(), Rng(4))
        rec = result.outputs[0]
        # Either î = 0 (got garbage → default eval) or î = 1 (we sent our
        # share; corrupted never answered round 2 → ⊥).
        assert rec.kind in ("default", "abort")

    def test_two_party_only(self):
        from repro.functions import make_concat

        with pytest.raises(ValueError):
            Opt2SfeProtocol(make_concat(3, 8))

    def test_reconstruction_rounds_attribute(self):
        assert self.protocol.reconstruction_rounds == 2


class TestSingleRound:
    def setup_method(self):
        self.protocol = SingleRoundProtocol(make_swap(16))

    def test_honest_run(self):
        result = run_execution(
            self.protocol, (5, 6), PassiveAdversary(), Rng(1)
        )
        assert result.outputs[0].value == 6

    @pytest.mark.parametrize("corrupt", [0, 1])
    def test_lemma10_always_unfair(self, corrupt):
        counts = events_over_runs(
            self.protocol, lambda: LockWatchingAborter({corrupt}), n_runs=60
        )
        assert counts[FairnessEvent.E10] == 60


class TestDummy:
    def test_fair_delivery(self):
        protocol = DummyProtocol(make_swap(8))
        counts = events_over_runs(
            protocol, lambda: LockWatchingAborter({0}), n_runs=40
        )
        assert counts[FairnessEvent.E11] == 40

    def test_refusal_gives_e00(self):
        protocol = DummyProtocol(make_swap(8))
        counts = events_over_runs(
            protocol, lambda: AbortAtRound({0}, 0, claim=False), n_runs=40
        )
        assert counts[FairnessEvent.E00] == 40
