"""Tests for the claims-registry verification subsystem."""

import json
import math

import pytest

from repro.analysis import (
    deterministic_payload,
    report_to_dict,
    threshold_gmw_balance_sum,
    threshold_gmw_overshoot,
)
from repro.core import STANDARD_GAMMA, PayoffVector, balanced_sum_bound
from repro.runtime import ProcessPoolRunner, SerialRunner
from repro.verify import (
    BoundKind,
    Claim,
    ClaimConfigError,
    ClaimContext,
    ClaimRegistry,
    DifferentialMismatch,
    Measurement,
    TolerancePolicy,
    Verdict,
    assert_agreement,
    check_claim,
    compare,
    confidence_interval,
    default_registry,
    hoeffding_halfwidth,
    resolve_budget,
    verify_claims,
)


def make_claim(kind, analytic, measurement, tolerance=None, claim_id="T1"):
    return Claim(
        claim_id=claim_id,
        experiment="T",
        paper_ref="test",
        statement="synthetic",
        kind=kind,
        analytic=lambda: analytic,
        measure=lambda ctx: measurement,
        tolerance=tolerance or TolerancePolicy(slack=0.02, z=3.0),
        base_runs=32,
    )


class TestRegistry:
    def test_at_least_twelve_distinct_experiments(self):
        registry = default_registry()
        assert len(registry.experiments()) >= 12
        assert len(registry) >= 12

    def test_every_claim_has_both_sides_and_a_paper_ref(self):
        for claim in default_registry():
            assert callable(claim.analytic)
            assert callable(claim.measure)
            assert claim.paper_ref
            assert claim.statement
            assert isinstance(claim.kind, BoundKind)
            # The analytic side must evaluate without running anything.
            assert isinstance(float(claim.analytic()), float)

    def test_selection_by_experiment_and_id(self):
        registry = default_registry()
        e1 = registry.select("E1")
        assert {c.experiment for c in e1} == {"E1"}
        assert len(e1) >= 2
        both = registry.select("E2,E3")
        assert [c.claim_id for c in both] == ["E2", "E3"]
        single = registry.select("E10-rounds")
        assert len(single) == 1
        # Duplicates collapse.
        assert len(registry.select("E2,E2,E2")) == 1

    def test_select_all_and_errors(self):
        registry = default_registry()
        assert len(registry.select("all")) == len(registry)
        with pytest.raises(ClaimConfigError):
            registry.select("E99")
        with pytest.raises(ClaimConfigError):
            registry.select("")
        with pytest.raises(ClaimConfigError):
            registry.get("nope")

    def test_duplicate_registration_rejected(self):
        registry = ClaimRegistry()
        claim = make_claim(BoundKind.UPPER, 1.0, Measurement.exact(1.0))
        registry.register(claim)
        with pytest.raises(ClaimConfigError):
            registry.register(claim)

    def test_budget_resolution(self):
        assert resolve_budget("small") == 0.25
        assert resolve_budget("medium") == 1.0
        assert resolve_budget("large") == 4.0
        assert resolve_budget(100) == 0.5
        assert resolve_budget("400") == 2.0
        with pytest.raises(ClaimConfigError):
            resolve_budget("huge")
        with pytest.raises(ClaimConfigError):
            resolve_budget(0)

    def test_context_run_floor(self):
        ctx = ClaimContext(seed="s", scale=0.01)
        assert ctx.runs(100) == 32  # MIN_RUNS floor
        assert ClaimContext(seed="s", scale=2.0).runs(100) == 200


class TestIntervals:
    def test_hoeffding_shrinks_with_n(self):
        wide = hoeffding_halfwidth(10)
        narrow = hoeffding_halfwidth(1000)
        assert 0 < narrow < wide
        assert hoeffding_halfwidth(0) == 0.0
        with pytest.raises(ValueError):
            hoeffding_halfwidth(10, delta=0.0)

    def test_hoeffding_closed_form(self):
        expected = 2.0 * math.sqrt(math.log(2 / 0.05) / (2 * 50))
        assert hoeffding_halfwidth(50, spread=2.0, delta=0.05) == pytest.approx(
            expected
        )

    def test_exact_measurement_degenerate_interval(self):
        assert confidence_interval(Measurement.exact(3.0)) == (3.0, 3.0)

    def test_proportion_envelope_contains_wilson_and_hoeffding(self):
        m = Measurement.proportion(30, 100)
        lo, hi = confidence_interval(m)
        assert lo <= 0.3 <= hi
        half = hoeffding_halfwidth(100)
        assert lo <= 0.3 - half and hi >= 0.3 + half

    def test_estimate_ci_widens_envelope(self):
        m = Measurement(value=0.5, n_runs=10_000, ci_low=0.1, ci_high=0.9)
        lo, hi = confidence_interval(m)
        assert lo <= 0.1 and hi >= 0.9


class TestCompare:
    def test_upper_bound_ladder(self):
        tol = TolerancePolicy(slack=0.05, z=0.0)
        ok, _ = compare(BoundKind.UPPER, 1.0, Measurement.proportion(90, 100), tol)
        within, _ = compare(
            BoundKind.UPPER, 0.88, Measurement.proportion(90, 100), tol
        )
        violated, margin = compare(
            BoundKind.UPPER, 0.5, Measurement.proportion(90, 100), tol
        )
        assert (ok, within, violated) == ("ok", "within-tolerance", "violated")
        assert margin == pytest.approx(0.4)

    def test_lower_bound_is_mirrored(self):
        tol = TolerancePolicy(slack=0.05, z=0.0)
        ok, _ = compare(BoundKind.LOWER, 0.5, Measurement.proportion(90, 100), tol)
        violated, _ = compare(
            BoundKind.LOWER, 0.99, Measurement.proportion(50, 100), tol
        )
        assert (ok, violated) == ("ok", "violated")

    def test_equality_uses_the_interval(self):
        tol = TolerancePolicy(slack=0.0, z=0.0)
        verdict, _ = compare(
            BoundKind.EQUALITY, 0.52, Measurement.proportion(50, 100), tol
        )
        assert verdict == "ok"  # inside the Wilson/Hoeffding envelope
        verdict, _ = compare(
            BoundKind.EQUALITY, 0.95, Measurement.proportion(50, 100), tol
        )
        assert verdict == "violated"

    def test_exact_equality_degenerates(self):
        tol = TolerancePolicy(slack=0.0, z=0.0, spread=0.0)
        assert compare(BoundKind.EQUALITY, 2.0, Measurement.exact(2.0), tol)[0] == "ok"
        assert (
            compare(BoundKind.EQUALITY, 2.0, Measurement.exact(3.0), tol)[0]
            == "violated"
        )

    def test_strict_order_needs_a_positive_gap(self):
        tol = TolerancePolicy(slack=0.05, z=0.0)
        gap = Measurement(value=0.25, n_runs=100)
        assert compare(BoundKind.STRICT_ORDER, 0.25, gap, tol)[0] == "ok"
        drift = Measurement(value=0.45, n_runs=100)
        assert (
            compare(BoundKind.STRICT_ORDER, 0.25, drift, tol)[0]
            == "within-tolerance"
        )
        inverted = Measurement(value=-0.1, n_runs=100)
        assert (
            compare(BoundKind.STRICT_ORDER, 0.25, inverted, tol)[0] == "violated"
        )

    def test_assert_agreement_raises_on_mismatch(self):
        good = Measurement.proportion(50, 100)
        assert_agreement("T", 0.5, good)
        with pytest.raises(DifferentialMismatch):
            assert_agreement("T", 0.95, good)


class TestChecker:
    def test_check_claim_records_replay_metadata(self):
        runner = SerialRunner()
        registry = default_registry()
        ctx = ClaimContext(
            seed=("s", "verify", "E3"), scale=0.25, runner=runner
        )
        check = check_claim(registry.get("E3"), ctx)
        assert check.verdict in (Verdict.OK, Verdict.WITHIN_TOLERANCE)
        assert check.seed == (("s", "verify", "E3"),)
        assert check.chunk_spans, "no chunk spans captured"
        assert check.run_stats
        total = sum(stop - start for _, start, stop in check.chunk_spans)
        assert total >= check.measurement.n_runs

    def test_verify_claims_selection_and_exit_codes(self):
        report = verify_claims("E4,E10-rounds", budget="small", seed="t")
        assert len(report.checks) == 3  # two E4 claims + E10-rounds
        assert report.ok and report.exit_code == 0
        assert report.counts()["violated"] == 0

    def test_verify_claims_bad_spec_raises_config_error(self):
        with pytest.raises(ClaimConfigError):
            verify_claims("E99", budget="small")
        with pytest.raises(ClaimConfigError):
            verify_claims("all", budget="banana")

    def test_violated_claim_sets_exit_code(self):
        registry = ClaimRegistry([
            make_claim(
                BoundKind.UPPER,
                0.1,
                Measurement.proportion(90, 100),
                TolerancePolicy(slack=0.0, z=0.0),
            )
        ])
        report = verify_claims("all", budget="small", registry=registry)
        assert not report.ok
        assert report.exit_code == 1
        assert report.checks[0].verdict is Verdict.VIOLATED

    def test_report_render_mentions_every_claim(self):
        registry = ClaimRegistry([
            make_claim(BoundKind.EQUALITY, 1.0, Measurement.exact(1.0), claim_id="A"),
            make_claim(BoundKind.EQUALITY, 2.0, Measurement.exact(2.0), claim_id="B"),
        ])
        text = str(verify_claims("all", budget="small", registry=registry))
        assert "A" in text and "B" in text and "2 claims" in text


class TestReplayBitIdentity:
    def test_deterministic_payload_stable_across_backends(self):
        spec = "E1-naive,E5,E10-stop"

        def payload(runner):
            report = verify_claims(spec, budget="small", seed="replay", runner=runner)
            return json.dumps(
                deterministic_payload(report_to_dict(report)), sort_keys=True
            )

        serial = payload(SerialRunner())
        assert serial == payload(SerialRunner())
        assert serial == payload(
            ProcessPoolRunner(jobs=2, chunk_size=8, min_parallel_runs=1)
        )

    def test_warm_cache_replays_bit_identically(self, tmp_path):
        from repro.runtime.cache import ChunkCache

        def payload(cache):
            report = verify_claims(
                "E5", budget="small", seed="replay",
                runner=SerialRunner(cache=cache),
            )
            return json.dumps(
                deterministic_payload(report_to_dict(report)), sort_keys=True
            )

        cold = payload(ChunkCache(tmp_path / "chunks"))
        warm = payload(ChunkCache(tmp_path / "chunks"))
        assert cold == warm

    def test_timing_and_layout_keys_are_stripped(self):
        report = verify_claims("E4", budget="small", seed="t")
        exported = report_to_dict(report)
        assert "timing" in exported
        assert "chunk_spans" in exported["checks"][0]
        clean = deterministic_payload(exported)
        assert "timing" not in clean
        assert "chunk_spans" not in clean["checks"][0]
        assert "timing" not in clean["checks"][0]


class TestLemma17CorrectedConstant:
    """Pins the E7 discrepancy: the Lemma-17 display's even-n overshoot.

    EXPERIMENTS.md ("Known deviations", item 4) records that the paper's
    display bounds the Π½GMW excess by (γ10 − γ11) while its own per-t
    counting gives exactly half that.  These tests pin the corrected
    constant analytically and through the registered claim, so a future
    "fix" back to the display's constant fails loudly.
    """

    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_even_n_overshoot_is_half_the_display_constant(self, n):
        gamma = STANDARD_GAMMA
        excess = threshold_gmw_balance_sum(gamma, n) - balanced_sum_bound(n, gamma)
        corrected = (gamma.gamma10 - gamma.gamma11) / 2.0
        assert excess == pytest.approx(corrected)
        assert threshold_gmw_overshoot(gamma, n) == pytest.approx(corrected)
        # And strictly below the display's looser constant.
        assert excess < (gamma.gamma10 - gamma.gamma11) - 1e-12

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_odd_n_has_no_overshoot(self, n):
        gamma = STANDARD_GAMMA
        assert threshold_gmw_overshoot(gamma, n) == 0.0
        assert threshold_gmw_balance_sum(gamma, n) == pytest.approx(
            balanced_sum_bound(n, gamma)
        )

    def test_overshoot_validates_inputs(self):
        with pytest.raises(ValueError):
            threshold_gmw_overshoot(STANDARD_GAMMA, 1)
        with pytest.raises(ValueError):
            # γ01 > 0 is outside Γ+fair.
            threshold_gmw_overshoot(PayoffVector(0.0, 0.5, 1.0, 0.5), 4)

    def test_registered_claim_measures_the_corrected_constant(self):
        report = verify_claims("E7-overshoot", budget="small", seed="e7-pin")
        (check,) = report.checks
        assert check.verdict in (Verdict.OK, Verdict.WITHIN_TOLERANCE)
        gamma = STANDARD_GAMMA
        assert check.analytic_value == pytest.approx(
            balanced_sum_bound(4, gamma) + (gamma.gamma10 - gamma.gamma11) / 2.0
        )
        # The measured sum must reject the display's looser constant.
        display = balanced_sum_bound(4, gamma) + (gamma.gamma10 - gamma.gamma11)
        assert abs(check.measurement.value - check.analytic_value) < abs(
            check.measurement.value - display
        )
