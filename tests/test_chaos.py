"""Deterministic chaos-campaign harness: seeded plan reproducibility,
explicit trial-spec parsing, fingerprint stability, fault-dimension
composition rules, and a small in-process campaign that must come back
green (payload bit-identity + clean counters under injected faults)."""

import json

import pytest

from repro.crypto import Rng
from repro.runtime.chaos import (
    DIMENSIONS,
    VENUES,
    CampaignReport,
    TrialResult,
    TrialSpec,
    parse_trial_spec,
    payload_fingerprint,
    plan_campaign,
    run_campaign,
)


class TestPlanning:
    def test_same_seed_same_plan(self):
        a = plan_campaign(("chaos", 1), 8)
        b = plan_campaign(("chaos", 1), 8)
        assert a == b

    def test_different_seeds_diverge(self):
        a = plan_campaign(("chaos", 1), 8)
        b = plan_campaign(("chaos", 2), 8)
        assert a != b

    def test_plan_respects_the_venue_menu(self):
        specs = plan_campaign(7, 12, venues=("serial",))
        assert {s.venue for s in specs} == {"serial"}
        specs = plan_campaign(7, 24, venues=VENUES)
        assert {s.venue for s in specs} <= set(VENUES)

    def test_every_trial_names_at_least_one_dimension(self):
        for spec in plan_campaign("dims", 32):
            assert spec.dims
            assert set(spec.dims) <= set(DIMENSIONS)

    def test_planner_never_composes_interrupt_with_prepopulation(self):
        for spec in plan_campaign("combo", 64):
            if "interrupt-resume" in spec.dims:
                assert "cache-corruption" not in spec.dims
                assert "journal-corruption" not in spec.dims

    def test_fault_rates_live_in_the_documented_band(self):
        for spec in plan_campaign("rates", 32):
            assert 0.25 <= spec.fault_rate <= 0.6

    def test_unknown_venue_rejected(self):
        with pytest.raises(ValueError, match="unknown venue"):
            plan_campaign(1, 2, venues=("serial", "mainframe"))

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos dimension"):
            plan_campaign(1, 2, dims=("chunk-faults", "gamma-rays"))


class TestTrialSpec:
    def test_worker_kill_implies_exit_faults(self):
        spec = TrialSpec(0, "pool", ("worker-kill",), 0.3)
        assert spec.fault_kind == "exit"
        assert spec.fault_spec().kind == "exit"

    def test_chunk_faults_imply_raise(self):
        spec = TrialSpec(0, "serial", ("chunk-faults",), 0.3)
        assert spec.fault_kind == "raise"

    def test_kill_wins_over_raise(self):
        spec = TrialSpec(0, "pool", ("chunk-faults", "worker-kill"), 0.3)
        assert spec.fault_kind == "exit"

    def test_fault_free_dimensions_have_no_spec(self):
        spec = TrialSpec(0, "serial", ("journal-corruption",), 0.3)
        assert spec.fault_kind is None
        assert spec.fault_spec() is None

    def test_to_dict_round_trips_through_json(self):
        spec = TrialSpec(3, "pool", ("chunk-faults",), 0.412)
        again = json.loads(json.dumps(spec.to_dict()))
        assert again["venue"] == "pool"
        assert again["dims"] == ["chunk-faults"]
        assert again["fault_kind"] == "raise"


class TestParseTrialSpec:
    def test_round_trip(self):
        spec = parse_trial_spec("pool:chunk-faults+interrupt-resume", 0, 1)
        assert spec.venue == "pool"
        assert spec.dims == ("chunk-faults", "interrupt-resume")

    def test_parse_is_seed_deterministic(self):
        a = parse_trial_spec("serial:chunk-faults", 2, "s")
        b = parse_trial_spec("serial:chunk-faults", 2, "s")
        assert a == b

    def test_dim_order_is_canonicalised(self):
        a = parse_trial_spec("serial:interrupt-resume+chunk-faults", 0, 1)
        b = parse_trial_spec("serial:chunk-faults+interrupt-resume", 0, 1)
        assert a.dims == b.dims

    @pytest.mark.parametrize(
        "text",
        ["serial", "mainframe:chunk-faults", "serial:", "pool:warp-core"],
    )
    def test_malformed_specs_rejected(self, text):
        with pytest.raises(ValueError):
            parse_trial_spec(text, 0, 1)

    def test_explicit_impossible_combo_is_an_error_not_a_drop(self):
        with pytest.raises(ValueError, match="cannot compose"):
            parse_trial_spec(
                "serial:interrupt-resume+journal-corruption", 0, 1
            )


class TestFingerprint:
    def _values(self, seed):
        from repro.core import FairnessEvent
        from repro.core.utility import EventCounts

        counts = EventCounts()
        for i in range(seed):
            counts.record(FairnessEvent.E11, frozenset({i % 2}))
        return [counts]

    def test_equal_values_equal_fingerprints(self):
        assert payload_fingerprint(self._values(5)) == payload_fingerprint(
            self._values(5)
        )

    def test_different_values_different_fingerprints(self):
        assert payload_fingerprint(self._values(5)) != payload_fingerprint(
            self._values(6)
        )


class TestReport:
    def _report(self, verdicts):
        report = CampaignReport(seed_repr="7")
        for i, ok in enumerate(verdicts):
            report.results.append(
                TrialResult(
                    name=f"trial-{i:03d}",
                    ok=ok,
                    failures=[] if ok else ["boom"],
                    observed={},
                )
            )
        return report

    def test_all_green_exit_zero(self):
        report = self._report([True, True])
        assert report.ok and report.exit_code == 0
        assert report.to_dict()["failed_trials"] == []

    def test_any_red_exit_nonzero(self):
        report = self._report([True, False])
        assert not report.ok and report.exit_code == 1
        assert report.to_dict()["failed_trials"] == ["trial-001"]

    def test_str_mentions_every_trial(self):
        text = str(self._report([True, False]))
        assert "trial-000" in text and "trial-001" in text
        assert "boom" in text


class TestCampaignEndToEnd:
    def test_small_serial_campaign_is_green(self, tmp_path, monkeypatch):
        # Trials must not inherit ambient fault/cache/journal knobs.
        for var in ("REPRO_JOURNAL_DIR", "REPRO_RESUME", "REPRO_CACHE_DIR"):
            monkeypatch.delenv(var, raising=False)
        report = run_campaign(
            ("chaos-test", 1),
            n_trials=0,
            explicit=(
                "serial:chunk-faults",
                "serial:journal-corruption",
            ),
            workdir=tmp_path,
            trial_runs=24,
            chunk_size=6,
        )
        assert report.ok, str(report)
        observed = {r.name: r.observed for r in report.results}
        faulted = next(
            o for o in observed.values() if o.get("faulted_chunks")
        )
        assert faulted["faulted_chunks"] >= 1
        corrupted = next(
            o for o in observed.values() if o.get("journal_corrupt")
        )
        assert corrupted["journal_corrupt"] >= 1
        assert corrupted["journal_replayed"] >= 1

    def test_harness_crash_becomes_a_failed_trial(self, tmp_path, monkeypatch):
        import repro.runtime.chaos as chaos_mod

        def boom(spec, campaign):
            raise RuntimeError("synthetic harness crash")

        monkeypatch.setattr(chaos_mod, "run_trial", boom)
        report = run_campaign(
            1, n_trials=0, explicit=("serial:chunk-faults",),
            workdir=tmp_path,
        )
        assert not report.ok
        assert "trial harness error" in report.results[0].failures[0]

    def test_rng_namespace_does_not_collide_with_workload(self):
        # The planner's draws live under a "chaos-trial" label, so a
        # campaign seed equal to a workload seed cannot correlate runs.
        assert Rng((1, "chaos-trial", 0)).getrandbits(32) != Rng(
            (1, "chaos-run", 0)
        ).getrandbits(32)
