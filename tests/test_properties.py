"""Cross-cutting property-based tests on engine and framework invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries import (
    AbortAtRound,
    LockWatchingAborter,
    PassiveAdversary,
)
from repro.core import FairnessEvent, classify
from repro.core.events import adversary_learned_output, honest_learned_output
from repro.crypto import Rng
from repro.engine import run_execution
from repro.functions import make_swap
from repro.protocols import Opt2SfeProtocol


PROTOCOL = Opt2SfeProtocol(make_swap(12))


def run_once(seed, adversary):
    rng = Rng(seed)
    inputs = PROTOCOL.func.sample_inputs(rng.fork("in"))
    return inputs, run_execution(PROTOCOL, inputs, adversary, rng.fork("x"))


class TestDeterminism:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_same_seed_same_execution(self, seed):
        _, a = run_once(seed, LockWatchingAborter({0}))
        _, b = run_once(seed, LockWatchingAborter({0}))
        assert a.outputs == b.outputs
        assert a.adversary_claim == b.adversary_claim
        assert a.rounds_used == b.rounds_used
        assert classify(a, PROTOCOL.func) is classify(b, PROTOCOL.func)


class TestClassificationTotality:
    @given(
        st.integers(0, 10_000),
        st.sampled_from([frozenset({0}), frozenset({1})]),
        st.integers(0, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_execution_classifies(self, seed, corrupt, abort_round):
        adversary = AbortAtRound(set(corrupt), abort_round)
        inputs, result = run_once(seed, adversary)
        event = classify(result, PROTOCOL.func)
        assert isinstance(event, FairnessEvent)
        # Consistency between the event bits and the raw predicates.
        assert event.adversary_learned == adversary_learned_output(
            result, PROTOCOL.func
        )
        assert event.honest_learned == honest_learned_output(
            result, PROTOCOL.func
        )


class TestTranscriptInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_rounds_monotone_and_senders_valid(self, seed):
        _, result = run_once(seed, PassiveAdversary({1}))
        last_round = -1
        for message in result.transcript:
            assert message.round >= 0
            last_round = max(last_round, message.round)
            if isinstance(message.sender, int):
                assert 0 <= message.sender < result.n
        assert last_round < result.rounds_used

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_aborted_adversary_sends_nothing_after_abort(self, seed):
        adversary = AbortAtRound({0}, 1, claim=False)
        _, result = run_once(seed, adversary)
        for message in result.transcript:
            if message.sender == 0:
                assert message.round < 1


class TestEventAlgebra:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_passive_is_always_fair(self, seed):
        """An honest-but-curious adversary never produces E10 or E00."""
        _, result = run_once(seed, PassiveAdversary({0}))
        assert classify(result, PROTOCOL.func) is FairnessEvent.E11

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_lock_watching_never_loses(self, seed):
        """The lock-watcher never ends in E01/E00: it either wins (E10) or
        everyone learns (E11) — the Theorem-3 case split."""
        _, result = run_once(seed, LockWatchingAborter({1}))
        assert classify(result, PROTOCOL.func) in (
            FairnessEvent.E10,
            FairnessEvent.E11,
        )
