"""Circuit representation, builder, and truth-table compiler tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Circuit,
    CircuitBuilder,
    Gate,
    GateKind,
    and_circuit,
    bits_of,
    compile_truth_table,
    equality_circuit,
    int_of,
    majority3_circuit,
    millionaires_circuit,
    parity_circuit,
    swap_circuit,
    xor_circuit,
)


class TestCircuitValidation:
    def test_use_before_definition(self):
        with pytest.raises(ValueError):
            Circuit([Gate(0, GateKind.XOR, args=(1, 2))], [0], 2)

    def test_duplicate_wire(self):
        gates = [
            Gate(0, GateKind.INPUT, owner=0, input_index=0),
            Gate(0, GateKind.INPUT, owner=1, input_index=0),
        ]
        with pytest.raises(ValueError):
            Circuit(gates, [0], 2)

    def test_input_without_owner(self):
        with pytest.raises(ValueError):
            Circuit([Gate(0, GateKind.INPUT)], [0], 2)

    def test_bad_arity(self):
        gates = [
            Gate(0, GateKind.INPUT, owner=0, input_index=0),
            Gate(1, GateKind.XOR, args=(0,)),
        ]
        with pytest.raises(ValueError):
            Circuit(gates, [1], 2)

    def test_undefined_output(self):
        gates = [Gate(0, GateKind.INPUT, owner=0, input_index=0)]
        with pytest.raises(ValueError):
            Circuit(gates, [5], 2)

    def test_const_needs_bit(self):
        with pytest.raises(ValueError):
            Circuit([Gate(0, GateKind.CONST, value=None)], [0], 1)


class TestStockCircuits:
    @pytest.mark.parametrize("x", [0, 1])
    @pytest.mark.parametrize("y", [0, 1])
    def test_and(self, x, y):
        assert and_circuit().evaluate({0: [x], 1: [y]}) == (x & y,)

    @pytest.mark.parametrize("x", [0, 1])
    @pytest.mark.parametrize("y", [0, 1])
    def test_xor(self, x, y):
        assert xor_circuit().evaluate({0: [x], 1: [y]}) == (x ^ y,)

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=40)
    def test_millionaires(self, x, y):
        circuit = millionaires_circuit(4)
        out = circuit.evaluate({0: bits_of(x, 4), 1: bits_of(y, 4)})
        assert out == (1 if x > y else 0,)

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=30)
    def test_swap(self, x, y):
        circuit = swap_circuit(4)
        out = circuit.evaluate({0: bits_of(x, 4), 1: bits_of(y, 4)})
        assert int_of(out[:4]) == y and int_of(out[4:]) == x

    @given(st.integers(0, 7), st.integers(0, 7))
    @settings(max_examples=30)
    def test_equality(self, x, y):
        circuit = equality_circuit(3)
        out = circuit.evaluate({0: bits_of(x, 3), 1: bits_of(y, 3)})
        assert out == (1 if x == y else 0,)

    def test_parity(self):
        circuit = parity_circuit(4)
        assert circuit.evaluate({0: [1], 1: [1], 2: [0], 3: [1]}) == (1,)

    @pytest.mark.parametrize(
        "bits,expected",
        [((0, 0, 0), 0), ((1, 0, 0), 0), ((1, 1, 0), 1), ((1, 1, 1), 1)],
    )
    def test_majority3(self, bits, expected):
        circuit = majority3_circuit()
        out = circuit.evaluate({i: [b] for i, b in enumerate(bits)})
        assert out == (expected,)


class TestBuilder:
    def test_or_gate(self):
        b = CircuitBuilder(2)
        x, y = b.input_bit(0), b.input_bit(1)
        circuit = b.build([b.or_(x, y)])
        for xv in (0, 1):
            for yv in (0, 1):
                assert circuit.evaluate({0: [xv], 1: [yv]}) == (xv | yv,)

    def test_mux(self):
        b = CircuitBuilder(3)
        s, a, c = b.input_bit(0), b.input_bit(1), b.input_bit(2)
        circuit = b.build([b.mux(s, a, c)])
        for sv in (0, 1):
            for av in (0, 1):
                for cv in (0, 1):
                    out = circuit.evaluate({0: [sv], 1: [av], 2: [cv]})
                    assert out == ((av if sv else cv),)

    def test_invalid_owner(self):
        with pytest.raises(ValueError):
            CircuitBuilder(2).input_bit(5)

    def test_input_counting(self):
        b = CircuitBuilder(2)
        b.input_bits(0, 3)
        b.input_bit(1)
        circuit = b.build([0])
        assert circuit.input_bits_per_party() == {0: 3, 1: 1}


class TestAndLayers:
    def test_layering(self):
        b = CircuitBuilder(2)
        x, y = b.input_bit(0), b.input_bit(1)
        a1 = b.and_(x, y)  # layer 1
        a2 = b.and_(a1, x)  # layer 2
        a3 = b.and_(x, y)  # layer 1 again
        circuit = b.build([a2, a3])
        layers = circuit.and_layers()
        assert [len(layer) for layer in layers] == [2, 1]

    def test_xor_does_not_deepen(self):
        b = CircuitBuilder(2)
        x, y = b.input_bit(0), b.input_bit(1)
        a1 = b.and_(x, y)
        mixed = b.xor(a1, x)
        a2 = b.and_(mixed, y)
        circuit = b.build([a2])
        assert len(circuit.and_layers()) == 2


class TestCompiler:
    @given(st.integers(0, 7), st.integers(0, 7))
    @settings(max_examples=30)
    def test_compiled_matches_function(self, x, y):
        circuit = compile_truth_table(
            lambda v: (v[0] + v[1]) % 8, [3, 3], 3
        )
        out = circuit.evaluate({0: bits_of(x, 3), 1: bits_of(y, 3)})
        assert int_of(out) == (x + y) % 8

    def test_constant_zero_output(self):
        circuit = compile_truth_table(lambda v: 0, [1, 1], 1)
        assert circuit.evaluate({0: [1], 1: [1]}) == (0,)

    def test_constant_one_output(self):
        circuit = compile_truth_table(lambda v: 1, [1, 1], 1)
        for x in (0, 1):
            for y in (0, 1):
                assert circuit.evaluate({0: [x], 1: [y]}) == (1,)

    def test_width_cap(self):
        with pytest.raises(ValueError):
            compile_truth_table(lambda v: 0, [10, 10], 1)

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            compile_truth_table(lambda v: 0, [1], 1, n_parties=2)

    def test_three_party(self):
        circuit = compile_truth_table(
            lambda v: v[0] ^ v[1] ^ v[2], [1, 1, 1], 1
        )
        assert circuit.evaluate({0: [1], 1: [1], 2: [1]}) == (1,)


class TestBitHelpers:
    @given(st.integers(0, 255))
    @settings(max_examples=30)
    def test_roundtrip(self, x):
        assert int_of(bits_of(x, 8)) == x

    def test_bits_of_overflow(self):
        with pytest.raises(ValueError):
            bits_of(256, 8)
