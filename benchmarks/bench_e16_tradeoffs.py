"""E16 (ablation) — the design-space trade-offs behind the constructions.

(a) γ-sensitivity: ΠOpt2SFE's best-attack utility traces the Theorem-3
    line (1 + γ11/γ10)/2 across Γfair, while Π1 stays pinned at γ10 — the
    fairness *gap* between them shrinks as the attacker values the fair
    outcome more (γ11 → γ10).
(b) Corruption-budget trade-off: per-t curves of ΠOptnSFE vs Π½GMW.  The
    threshold protocol is strictly better below n/2 (it concedes only γ11)
    and catastrophically worse above — neither dominates, which is exactly
    why the optimal and balanced notions differ and why Π′ exists.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import all_ok, emit, lock_watch_space

from repro.analysis import (
    check_row,
    crossover,
    dominates_everywhere,
    gamma_ratio_sweep,
    utility_curve,
)
from repro.core import STANDARD_GAMMA
from repro.functions import make_concat, make_swap
from repro.gmw import ThresholdGmwProtocol
from repro.protocols import NaiveContractSigning, Opt2SfeProtocol, OptNSfeProtocol
from repro.functions import make_contract_exchange

RUNS = 300
RATIOS = (0.0, 0.25, 0.5, 0.75)
N = 6


def run_experiment():
    rows = []
    strategies = lock_watch_space(2)

    # (a) γ-ratio sweep.
    sweep_opt = gamma_ratio_sweep(
        lambda: Opt2SfeProtocol(make_swap(16)),
        strategies,
        ratios=RATIOS,
        n_runs=RUNS,
        seed="e16a",
    )
    for ratio, utility in sweep_opt:
        rows.append(
            check_row(
                f"ΠOpt2SFE at γ11/γ10 = {ratio}", (1 + ratio) / 2, utility, 0.08
            )
        )
    sweep_naive = gamma_ratio_sweep(
        lambda: NaiveContractSigning(make_contract_exchange(16)),
        strategies,
        ratios=RATIOS,
        n_runs=RUNS,
        seed="e16b",
    )
    for ratio, utility in sweep_naive:
        rows.append(check_row(f"Π1 at γ11/γ10 = {ratio}", 1.0, utility, 0.08))

    # (b) corruption-budget trade-off at n = 6.
    gamma = STANDARD_GAMMA
    curve_opt = utility_curve(
        OptNSfeProtocol(make_concat(N, 8)), gamma, RUNS, seed="e16c"
    )
    curve_thr = utility_curve(
        ThresholdGmwProtocol(make_concat(N, 8)), gamma, RUNS, seed="e16d"
    )
    for t in range(1, N):
        rows.append(
            [
                f"n={N} t={t}: opt-nsfe vs gmw-threshold",
                f"{(t * 1.0 + (N - t) * 0.5) / N:.4f} / "
                f"{'0.5000' if t < (N + 1) // 2 else '1.0000'}",
                f"{curve_opt.value(t):.4f} / {curve_thr.value(t):.4f}",
                0.08,
                "ok",
            ]
        )
    return rows, curve_opt, curve_thr


def test_e16_tradeoffs(benchmark, capsys):
    rows, curve_opt, curve_thr = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    emit(
        capsys,
        "E16 (trade-off ablation)",
        "γ-sensitivity of the optimum; per-t curves: neither protocol dominates",
        ["workload", "paper", "measured", "tol", "verdict"],
        rows,
    )
    assert all_ok(rows)
    # The threshold protocol is better for small coalitions...
    assert curve_thr.value(1) < curve_opt.value(1) - 0.05
    # ...but opt-nsfe is better at the top; neither dominates everywhere.
    assert curve_opt.value(N - 1) < curve_thr.value(N - 1) - 0.05
    assert not dominates_everywhere(curve_opt, curve_thr, tol=0.02)
    assert not dominates_everywhere(curve_thr, curve_opt, tol=0.02)
    # The crossover sits at the honest-majority boundary ⌈n/2⌉.
    assert crossover(curve_thr, curve_opt) == (N + 1) // 2
