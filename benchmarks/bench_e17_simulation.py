"""E17 (ablation) — the Theorem-3 simulator, executed.

Appendix A's proof exhibits a black-box simulator SA for any adversary
attacking ΠOpt2SFE.  We materialise SA as an engine-compatible protocol
(:class:`IdealWorldOpt2Sfe`) and run the *same strategy objects* against
the real protocol and against SA + Fsfe⊥ on fswp: the outcome
distributions must coincide (simulation), and SA's event ledger must keep
the expected payoff at or below (γ10 + γ11)/2 (the bound itself).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import all_ok, emit

from repro.adversaries import (
    AbortAtRound,
    FunctionalityAborter,
    LockWatchingAborter,
    PassiveAdversary,
)
from repro.analysis import opt2sfe_outcome_distributions, statistical_distance
from repro.core import STANDARD_GAMMA

RUNS = 400

STRATEGIES = {
    "passive": lambda c: PassiveAdversary({c}),
    "lock-watch": lambda c: LockWatchingAborter({c}),
    "abort@reconstruction-1": lambda c: AbortAtRound({c}, 1),
    "abort@reconstruction-2": lambda c: AbortAtRound({c}, 2),
    "phase-1-abort": lambda c: FunctionalityAborter({c}, "F_sharegen2"),
}


def run_experiment():
    rows = []
    for corrupted in (0, 1):
        for name, make in STRATEGIES.items():
            real, ideal, events = opt2sfe_outcome_distributions(
                lambda: make(corrupted),
                corrupted,
                n_runs=RUNS,
                seed=("e17", name, corrupted),
            )
            distance = statistical_distance(real, ideal)
            total = sum(events.values())
            payoff = sum(
                STANDARD_GAMMA.value(e) * c / total for e, c in events.items()
            )
            verdict = "ok" if distance <= 0.08 and payoff <= 0.75 + 0.08 else "VIOLATED"
            rows.append(
                [
                    f"p{corrupted + 1} corrupted, {name}",
                    f"{distance:.4f}",
                    f"{payoff:.4f}",
                    "{"
                    + ", ".join(
                        f"{e.name}:{c / total:.2f}" for e, c in sorted(
                            events.items(), key=lambda kv: kv[0].name
                        )
                    )
                    + "}",
                    verdict,
                ]
            )
    return rows


def test_e17_executable_simulator(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        capsys,
        "E17 (Thm 3 simulator, executable)",
        "real ≈ SA+Fsfe⊥ for every strategy; SA payoff ≤ (γ10+γ11)/2 = 0.75",
        [
            "attack",
            "real-vs-ideal distance",
            "SA expected payoff",
            "SA event ledger",
            "verdict",
        ],
        rows,
    )
    assert all_ok(rows)
