"""E2 — Theorem 3: u(ΠOpt2SFE, A) ≤ (γ10 + γ11)/2 for every adversary.

Sweeps the full standard strategy space (passive, lock-watching, abort at
every round, hybrid aborts, every corruption set) on three functions and a
grid of Γfair vectors; the sup must stay below the bound.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import TOL, all_ok, emit

from repro.adversaries import strategy_space_for_protocol
from repro.analysis import assess_protocol, bound_row, u_opt_2sfe
from repro.core import PayoffVector, STANDARD_GAMMA
from repro.functions import make_and, make_millionaires, make_swap
from repro.protocols import Opt2SfeProtocol

RUNS = 200  # per strategy; the space has ~20 strategies per protocol

GAMMAS = [STANDARD_GAMMA, PayoffVector(0.25, 0.0, 2.0, 0.75)]
FUNCS = [make_swap(16), make_and(), make_millionaires(6)]


def run_experiment():
    rows = []
    for func in FUNCS:
        protocol = Opt2SfeProtocol(func)
        space = strategy_space_for_protocol(protocol)
        for gamma in GAMMAS:
            assessment = assess_protocol(
                protocol, space, gamma, RUNS, seed=("e2", func.name)
            )
            bound = u_opt_2sfe(gamma)
            rows.append(
                bound_row(
                    f"{func.name} {gamma} (best: "
                    f"{assessment.best_attack.adversary})",
                    bound,
                    assessment.utility,
                    0.09 * gamma.gamma10,
                )
            )
    return rows


def test_e02_thm3_upper_bound(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        capsys,
        "E2 (Thm 3)",
        "sup_A u(ΠOpt2SFE, A) ≤ (γ10+γ11)/2 across strategies/functions/γ",
        ["workload", "bound", "measured sup", "tol", "verdict"],
        rows,
    )
    assert all_ok(rows)
