"""E9 — Theorem 6 / Lemma 22: corruption costs and ideal γC-fairness.

A utility-balanced protocol is ideally γC-fair under the cost function
c(t) = u(Π, A_t) − s(t); the derived cost matches the analytic φ(t) − γ11,
and no assessed competitor induces a strictly dominated (cheaper) cost.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import TOL, all_ok, emit, per_t_lock_watchers

from repro.analysis import balance_profile, check_row
from repro.core import (
    STANDARD_GAMMA,
    check_ideal_fairness,
    ideal_payoff,
    no_strictly_dominated_cost_exists,
    optimal_cost_from_profile,
    per_t_bound,
)
from repro.functions import make_concat
from repro.gmw import ThresholdGmwProtocol
from repro.protocols import OptNSfeProtocol

RUNS = 400
N = 5


def run_experiment():
    gamma = STANDARD_GAMMA
    protocol = OptNSfeProtocol(make_concat(N, 8))
    profile = balance_profile(
        protocol, per_t_lock_watchers(N), gamma, n_runs=RUNS, seed="e9"
    )
    cost = optimal_cost_from_profile(profile)
    rows = []
    for t in range(1, N):
        analytic = per_t_bound(N, t, gamma) - ideal_payoff(gamma, t, N)
        rows.append(check_row(f"derived cost c({t})", analytic, cost(t), TOL))
    check = check_ideal_fairness(profile, cost, tol=TOL)
    rows.append(
        [
            "ideal γC-fairness (net u ≤ s(t) ∀t)",
            "holds",
            "holds" if check.holds(tol=TOL) else "fails",
            TOL,
            "ok" if check.holds(tol=TOL) else "VIOLATED",
        ]
    )
    # Theorem 6(2): the threshold-GMW competitor does not induce a strictly
    # dominated (cheaper-everywhere) cost.
    competitor = balance_profile(
        ThresholdGmwProtocol(make_concat(N, 8)),
        per_t_lock_watchers(N),
        gamma,
        n_runs=200,
        seed="e9-comp",
    )
    optimal = no_strictly_dominated_cost_exists(profile, [competitor], tol=TOL)
    rows.append(
        [
            "no strictly dominated competitor cost",
            "true",
            str(optimal).lower(),
            TOL,
            "ok" if optimal else "VIOLATED",
        ]
    )
    return rows


def test_e09_corruption_costs(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        capsys,
        "E9 (Thm 6 / Lemma 22)",
        "utility balance ⇒ ideal γC-fairness with the optimal cost c(t)=u(Π,A_t)−s(t)",
        ["quantity", "paper", "measured", "tol", "verdict"],
        rows,
    )
    assert all_ok(rows)
