"""Run-ledger replay — cold compute vs. resumed-from-journal.

Two passes over the same ΠOpt2SFE sweep:

1. **cold + journal** — fresh ledger: every chunk computes and is
   durably appended (the measured pass carries the full fsync cost of
   crash-safety, so the overhead of journaling is visible in the
   artifact, not hidden in setup).
2. **resumed** — the same batch restarted with ``resume=True``: every
   span replays from the ledger instead of recomputing.

Both must be bit-identical to an unjournaled serial run (asserted
unconditionally), every span of the resumed pass must come from the
ledger, and the wall-clock verdict — resume ≥ 2× cold — is asserted
unconditionally: replaying a JSON record beats re-executing a protocol
chunk on any host, so the verdict never flakes on runner size.  The
measured numbers land in ``BENCH_journal.json`` at the repo root.

Runnable standalone (``python benchmarks/bench_journal.py``) or under
pytest.
"""

import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.adversaries import strategy_space_for_protocol
from repro.analysis import sweep_strategies
from repro.core import STANDARD_GAMMA
from repro.functions import make_swap
from repro.protocols import Opt2SfeProtocol
from repro.runtime import NO_FAULTS, RunJournal, SerialRunner

RUNS = 200
SPEEDUP_FLOOR = 2.0

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_journal.json"


def _sweep(journal):
    """One full sweep; returns (estimates, seconds, journal counters)."""
    protocol = Opt2SfeProtocol(make_swap(16))
    space = strategy_space_for_protocol(protocol)
    runner = SerialRunner(fault=NO_FAULTS, journal=journal, cache=None)
    t0 = time.perf_counter()
    estimates = sweep_strategies(
        protocol, space, STANDARD_GAMMA, RUNS, seed="bench-journal",
        runner=runner,
    )
    elapsed = time.perf_counter() - t0
    stats = runner.last_stats
    counters = {
        "executions": stats.executions,
        "n_chunks": stats.n_chunks,
        "journal_appended_chunks": stats.journal_appended_chunks,
        "journal_replayed_chunks": stats.journal_replayed_chunks,
        "journal_corrupt_records": stats.journal_corrupt_records,
        "journal_stale_records": stats.journal_stale_records,
    }
    return estimates, elapsed, counters


def run_benchmark():
    cpus = os.cpu_count() or 1

    # Reference pass: no ledger anywhere near the batch.
    plain_estimates, plain_s, _ = _sweep(journal=None)

    with tempfile.TemporaryDirectory() as tmp:
        cold_estimates, cold_s, cold_tot = _sweep(RunJournal(tmp))
        resumed_estimates, resumed_s, resumed_tot = _sweep(
            RunJournal(tmp, resume=True)
        )

    # The ledger may change where a partial comes from, never its value.
    assert cold_estimates == plain_estimates, "journaling changed results"
    assert resumed_estimates == plain_estimates, "resume changed results"
    assert cold_tot["journal_appended_chunks"] == cold_tot["n_chunks"]
    assert resumed_tot["journal_replayed_chunks"] == resumed_tot["n_chunks"]
    assert resumed_tot["journal_corrupt_records"] == 0
    assert resumed_tot["journal_stale_records"] == 0

    resume_speedup = cold_s / max(resumed_s, 1e-9)
    append_overhead = cold_s / max(plain_s, 1e-9)

    payload = {
        "workload": {
            "protocol": "opt-2sfe[swap16]",
            "runs": RUNS,
            "executions_per_pass": cold_tot["executions"],
            "chunks_per_pass": cold_tot["n_chunks"],
        },
        "cpus": cpus,
        "passes": {
            "plain": {"wall_s": round(plain_s, 4)},
            "cold_journaled": {
                "wall_s": round(cold_s, 4), **cold_tot
            },
            "resumed": {
                "wall_s": round(resumed_s, 4), **resumed_tot
            },
        },
        "speedups": {
            "resume_vs_cold": round(resume_speedup, 3),
            "append_overhead_vs_plain": round(append_overhead, 3),
        },
        "asserted": True,
        "bit_identical": True,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    assert resume_speedup >= SPEEDUP_FLOOR, (
        f"journal resume only {resume_speedup:.2f}x vs cold compute "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    return payload


def test_journal_replay(capsys):
    payload = run_benchmark()
    with capsys.disabled():
        print("\n" + json.dumps(payload["speedups"], indent=2))


if __name__ == "__main__":
    print(json.dumps(run_benchmark(), indent=2, sort_keys=True))
