"""E13 — Definitions 1/2 at scale: the fairness partial order over the
whole two-party protocol zoo on the swap/contract-exchange task.

Expected order (fairest first):
  { ΠOpt2SFE, Π2 }  ≺  { Π1, single-round, gradual-release }
with the dummy fair protocol ΦFsfe strictly fairest (it is the unreachable
ideal reference).  Gradual release landing in the bottom class is the
introduction's point about the resource-fairness line of work: under the
utility lens, bitwise release buys nothing.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import RUNS, TOL, emit, lock_watch_space

from repro.analysis import assess_protocol, build_order
from repro.core import STANDARD_GAMMA
from repro.functions import make_contract_exchange, make_swap
from repro.protocols import (
    CoinOrderedContractSigning,
    DummyProtocol,
    GradualReleaseProtocol,
    NaiveContractSigning,
    Opt2SfeProtocol,
    SingleRoundProtocol,
)


def run_experiment():
    gamma = STANDARD_GAMMA
    swap = make_swap(16)
    strategies = lock_watch_space(2)
    protocols = [
        DummyProtocol(swap),
        Opt2SfeProtocol(swap),
        CoinOrderedContractSigning(make_contract_exchange(16)),
        NaiveContractSigning(make_contract_exchange(16)),
        SingleRoundProtocol(swap),
        GradualReleaseProtocol(swap),
    ]
    assessments = [
        assess_protocol(p, strategies, gamma, RUNS, seed=("e13", p.name))
        for p in protocols
    ]
    order = build_order(assessments, tolerance=TOL)
    rows = [
        [a.protocol_name, f"{a.utility:.4f}", a.best_attack.adversary]
        for a in sorted(assessments, key=lambda a: a.utility)
    ]
    return order, rows


def test_e13_partial_order(benchmark, capsys):
    order, rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        capsys,
        "E13 (Defs. 1/2)",
        "measured ⪯γ order over the two-party zoo",
        ["protocol", "best-attack utility", "best strategy"],
        rows,
    )
    with capsys.disabled():
        print(order.render() + "\n")
    swap_name = "opt-2sfe[swap16]"
    # The dummy ideal is fairest; among real protocols the optimal pair tops.
    classes = order.equivalence_classes()
    assert classes[0] == ["dummy-fair[swap16]"]
    assert set(classes[1]) == {swap_name, "pi2-coin"}
    assert set(classes[2]) == {
        "pi1-naive",
        "single-round[swap16]",
        "gradual-release[swap16]",
    }
    assert order.strictly_fairer(swap_name, "pi1-naive")
    assert order.strictly_fairer(swap_name, "gradual-release[swap16]")
