"""Hot-path optimization layer — cold vs. warm-memoized vs. disk-cached.

Three passes over the same two-protocol sweep (ΠOpt2SFE over swap16 and
GMW over AND — the latter exercises the content-memoized truth-table
compiler and interned fields):

1. **cold** — fresh process: every setup memo misses, every circuit is
   compiled from scratch, no chunk cache.
2. **warm-memoized** — same process, protocols rebuilt from their specs:
   the process-local memos (validated primes, interned fields, compiled
   circuits, layer plans) are hot, still no chunk cache.
3. **disk-cached** — a :class:`~repro.runtime.ChunkCache` populated by a
   priming pass serves every chunk from disk.

All three must produce bit-identical estimates (asserted
unconditionally, as is serial-vs-pool identity).  The wall-clock verdict
— warm disk cache ≥ 2× cold — is also asserted unconditionally: unlike
pool-parallel speedups it does not depend on the host's CPU count (disk
replay beats recomputation even on the 1-CPU containers CI uses), so the
benchmark always carries a verdict and records the host's ``cpus``
alongside every pass for context.  The measured numbers are written to
``BENCH_hotpath.json`` at the repo root so the trajectory is committed
alongside the code it describes.

Runnable standalone (``python benchmarks/bench_hotpath.py``) or under
pytest.
"""

import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.adversaries import strategy_space_for_protocol
from repro.analysis import sweep_strategies
from repro.core import STANDARD_GAMMA
from repro.functions import make_and, make_swap
from repro.gmw import gmw_from_spec
from repro.protocols import Opt2SfeProtocol
from repro.runtime import ChunkCache, ProcessPoolRunner, SerialRunner

RUNS_2SFE = 150
RUNS_GMW = 60
SPEEDUP_FLOOR = 2.0

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


def _build_workloads():
    """(protocol, space, runs, seed) tuples — rebuilt per pass so the
    warm pass measures memoized construction, not object reuse."""
    swap = Opt2SfeProtocol(make_swap(16))
    gmw = gmw_from_spec(make_and(), [1, 1])
    return [
        (swap, strategy_space_for_protocol(swap), RUNS_2SFE, "hotpath-2sfe"),
        (gmw, strategy_space_for_protocol(gmw), RUNS_GMW, "hotpath-gmw"),
    ]


def _sweep(runner):
    """One full sweep; returns (estimates, seconds, summed RunStats fields)."""
    t0 = time.perf_counter()
    estimates = []
    totals = {
        "executions": 0,
        "memo_hits": 0,
        "memo_misses": 0,
        "cache_hits": 0,
        "cache_misses": 0,
        "cache_stores": 0,
        "setup_s": 0.0,
        "execute_s": 0.0,
        "classify_s": 0.0,
    }
    for protocol, space, runs, seed in _build_workloads():
        estimates.append(
            sweep_strategies(
                protocol, space, STANDARD_GAMMA, runs, seed=seed, runner=runner
            )
        )
        stats = runner.last_stats
        for key in totals:
            totals[key] += getattr(stats, key)
    return estimates, time.perf_counter() - t0, totals


def run_benchmark():
    cpus = os.cpu_count() or 1

    # Pass 1: cold — this process has not built these protocols yet.
    cold_estimates, cold_s, cold_tot = _sweep(SerialRunner(cache=None))

    # Pass 2: warm-memoized — same sweep, process-local memos now hot.
    warm_estimates, warm_s, warm_tot = _sweep(SerialRunner(cache=None))

    with tempfile.TemporaryDirectory() as tmp:
        # Priming pass populates the chunk cache (timed as "store" cost),
        # then the measured pass replays every chunk from disk.
        _, prime_s, prime_tot = _sweep(SerialRunner(cache=ChunkCache(tmp)))
        cached_estimates, cached_s, cached_tot = _sweep(
            SerialRunner(cache=ChunkCache(tmp))
        )
        pool_estimates, _, _ = _sweep(
            ProcessPoolRunner(2, min_parallel_runs=0, cache=ChunkCache(tmp))
        )

    # Determinism is asserted unconditionally: neither memoization, the
    # disk cache, nor the backend may change a single event count.
    assert warm_estimates == cold_estimates, "memoization changed results"
    assert cached_estimates == cold_estimates, "chunk cache changed results"
    assert pool_estimates == cold_estimates, "pool+cache changed results"
    assert cached_tot["cache_hits"] > 0 and cached_tot["cache_misses"] == 0
    assert prime_tot["cache_stores"] > 0
    assert warm_tot["memo_hits"] > 0, "warm pass should hit setup memos"

    disk_speedup = cold_s / max(cached_s, 1e-9)
    warm_speedup = cold_s / max(warm_s, 1e-9)

    payload = {
        "workload": {
            "protocols": ["opt-2sfe[swap16]", "gmw[and]"],
            "runs": {"opt-2sfe": RUNS_2SFE, "gmw": RUNS_GMW},
            "executions_per_pass": cold_tot["executions"],
        },
        "cpus": cpus,
        "passes": {
            "cold": {
                "wall_s": round(cold_s, 4), "cpus": cpus, **_round(cold_tot)
            },
            "warm_memoized": {
                "wall_s": round(warm_s, 4), "cpus": cpus, **_round(warm_tot)
            },
            "disk_prime": {
                "wall_s": round(prime_s, 4), "cpus": cpus, **_round(prime_tot)
            },
            "disk_cached": {
                "wall_s": round(cached_s, 4), "cpus": cpus,
                **_round(cached_tot)
            },
        },
        "speedups": {
            "warm_memoized_vs_cold": round(warm_speedup, 3),
            "disk_cached_vs_cold": round(disk_speedup, 3),
        },
        "asserted": True,
        "bit_identical": True,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    assert disk_speedup >= SPEEDUP_FLOOR, (
        f"warm disk cache only {disk_speedup:.2f}x vs cold "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    return payload


def test_hotpath(capsys):
    payload = run_benchmark()
    with capsys.disabled():
        print("\n" + json.dumps(payload["speedups"], indent=2))


def _round(totals):
    return {
        k: (round(v, 4) if isinstance(v, float) else v)
        for k, v in totals.items()
    }


if __name__ == "__main__":
    print(json.dumps(run_benchmark(), indent=2, sort_keys=True))
