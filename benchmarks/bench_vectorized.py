"""Vectorized backend — reference engine vs. NumPy kernels, bit-identical.

One sweep over the vectorizable workloads (the Gordon–Katz 1/p protocols
under the worst-case known-output stopper, and the single-round /
gradual-release strawmen under lock-watching aborters), executed twice:

1. **reference** — the ``engine.execution`` state machine, one run at a
   time (``--backend reference``).
2. **vectorized** — the NumPy kernels in ``repro.runtime.vectorized``,
   whole chunks as array operations (``--backend vectorized``, forced so
   an eligibility regression fails loudly instead of quietly measuring
   the reference engine twice).

Bit-identity is asserted unconditionally: every task's event counts and
corruption counts must match exactly, run for run.  The wall-clock
verdict — vectorized ≥ 10× reference — is asserted at the ``large``
budget (the committed artifact); the ``small`` budget (CI's perf-smoke
lane) records the numbers and still asserts bit-identity, but skips the
speedup floor since tiny batches under-amortise kernel setup.  Results
are written to ``BENCH_vectorized.json`` at the repo root.

Runnable standalone (``python benchmarks/bench_vectorized.py [--budget
small|large]``, default large) or under pytest (budget from
``REPRO_BENCH_BUDGET``, default small).
"""

import json
import os
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.adversaries import KnownOutputStopper, LockWatchingAborter, fixed
from repro.functions import make_and
from repro.protocols import (
    GordonKatzProtocol,
    GradualReleaseProtocol,
    SingleRoundProtocol,
)
from repro.runtime import HAVE_NUMPY, ExecutionTask, SerialRunner
from repro.verify.claims import constant_inputs

SPEEDUP_FLOOR = 10.0

#: Runs per workload at the ``large`` budget; ``small`` divides by 8.
LARGE_RUNS = {
    "gordon-katz-p2": 2400,
    "gordon-katz-p4": 1200,
    "single-round": 1200,
    "gradual-release": 1200,
}

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_vectorized.json"


def _workloads(scale: int):
    known = fixed(
        "known-output", lambda: KnownOutputStopper(0, known_output=1)
    )
    lock0 = fixed("lock-watch[0]", lambda: LockWatchingAborter({0}))
    sampler = constant_inputs((1, 1))
    protos = {
        "gordon-katz-p2": (GordonKatzProtocol(make_and(), p=2), known),
        "gordon-katz-p4": (GordonKatzProtocol(make_and(), p=4), known),
        "single-round": (SingleRoundProtocol(make_and()), lock0),
        "gradual-release": (GradualReleaseProtocol(make_and()), lock0),
    }
    return [
        (
            name,
            ExecutionTask(
                protocol,
                factory,
                max(1, LARGE_RUNS[name] // scale),
                seed=("bench-vectorized", name),
                input_sampler=sampler,
            ),
        )
        for name, (protocol, factory) in protos.items()
    ]


def _sweep(backend: str, scale: int):
    runner = SerialRunner(cache=None, backend=backend)
    t0 = time.perf_counter()
    results = {}
    vectorized_runs = 0
    for name, task in _workloads(scale):
        results[name] = runner.run_one(task)
        vectorized_runs += runner.last_stats.vectorized_runs
    return results, time.perf_counter() - t0, vectorized_runs


def run_benchmark(budget: str = "large"):
    if not HAVE_NUMPY:
        raise SystemExit(
            "bench_vectorized needs numpy (the reference engine still "
            "works without it; there is just nothing to benchmark)"
        )
    if budget not in ("small", "large"):
        raise SystemExit(f"unknown budget {budget!r}; use small or large")
    scale = 1 if budget == "large" else 8
    cpus = os.cpu_count() or 1

    ref_results, ref_s, ref_vec_runs = _sweep("reference", scale)
    vec_results, vec_s, vec_runs = _sweep("vectorized", scale)

    # Bit-identity is the backend's contract — asserted at every budget.
    assert ref_vec_runs == 0, "reference pass used the vectorized engine"
    total_runs = 0
    for name, ref in ref_results.items():
        vec = vec_results[name]
        assert ref.counts == vec.counts, f"{name}: event counts diverged"
        assert ref.corruption_counts == vec.corruption_counts, (
            f"{name}: corruption counts diverged"
        )
        total_runs += ref.total
    assert vec_runs == total_runs, "vectorized pass fell back somewhere"

    speedup = ref_s / max(vec_s, 1e-9)
    asserted = budget == "large"
    payload = {
        "workload": {
            "runs": {
                name: max(1, LARGE_RUNS[name] // scale)
                for name in LARGE_RUNS
            },
            "total_runs": total_runs,
        },
        "budget": budget,
        "cpus": cpus,
        "passes": {
            "reference": {
                "wall_s": round(ref_s, 4),
                "ms_per_run": round(1000.0 * ref_s / total_runs, 4),
                "cpus": cpus,
            },
            "vectorized": {
                "wall_s": round(vec_s, 4),
                "ms_per_run": round(1000.0 * vec_s / total_runs, 4),
                "cpus": cpus,
                "vectorized_runs": vec_runs,
            },
        },
        "speedup_vectorized_vs_reference": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_met": speedup >= SPEEDUP_FLOOR,
        "asserted": asserted,
        "bit_identical": True,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    if asserted:
        assert speedup >= SPEEDUP_FLOOR, (
            f"vectorized backend only {speedup:.2f}x vs reference "
            f"(floor {SPEEDUP_FLOOR}x at budget=large)"
        )
    return payload


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
def test_vectorized_speedup(capsys):
    budget = os.environ.get("REPRO_BENCH_BUDGET", "small")
    payload = run_benchmark(budget)
    with capsys.disabled():
        print(
            "\nvectorized vs reference: "
            f"{payload['speedup_vectorized_vs_reference']}x "
            f"(budget={payload['budget']}, "
            f"asserted={payload['asserted']})"
        )


if __name__ == "__main__":
    budget = "large"
    argv = sys.argv[1:]
    if argv[:1] == ["--budget"] and len(argv) > 1:
        budget = argv[1]
    elif argv and argv[0].startswith("--budget="):
        budget = argv[0].split("=", 1)[1]
    print(json.dumps(run_benchmark(budget), indent=2, sort_keys=True))
