"""E5 — Lemmas 11/13: ΠOptnSFE per-t utilities.

For every n in the sweep and every t in [1, n−1], the best t-adversary's
utility is (t·γ10 + (n−t)·γ11)/n — both attained (lock-watching coalition)
and never exceeded (strategy sweep at the largest n).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import TOL, all_ok, emit, lock_watch_space

from repro.adversaries import LockWatchingAborter, fixed
from repro.analysis import assess_protocol, check_row, estimate_utility, u_opt_nsfe
from repro.core import STANDARD_GAMMA
from repro.functions import make_concat
from repro.protocols import OptNSfeProtocol

RUNS = 400
NS = (3, 4, 5, 6)


def run_experiment():
    gamma = STANDARD_GAMMA
    rows = []
    for n in NS:
        protocol = OptNSfeProtocol(make_concat(n, 8))
        for t in range(1, n):
            factory = fixed(
                f"lw-t{t}", lambda t=t: LockWatchingAborter(set(range(t)))
            )
            est = estimate_utility(
                protocol, factory, gamma, RUNS, seed=("e5", n, t)
            )
            rows.append(
                check_row(
                    f"n={n} t={t}", u_opt_nsfe(gamma, n, t), est.mean, TOL
                )
            )
    # Upper bound across corruption sets at n = 4.
    protocol = OptNSfeProtocol(make_concat(4, 8))
    assessment = assess_protocol(
        protocol, lock_watch_space(4), gamma, 200, seed=("e5-sup",)
    )
    rows.append(
        check_row(
            "n=4 sup over all corruption sets",
            u_opt_nsfe(gamma, 4, 3),
            assessment.utility,
            0.09,
        )
    )
    return rows


def test_e05_multiparty_per_t(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        capsys,
        "E5 (Lemmas 11/13)",
        "u(ΠOptnSFE, A_t) = (t·γ10 + (n−t)·γ11)/n",
        ["workload", "paper", "measured", "tol", "verdict"],
        rows,
    )
    assert all_ok(rows)
