"""E8 — Lemma 18: an optimally fair protocol that is not utility-balanced.

The signal-deviating 1-adversary reaches γ10/n + (n−1)/n·(γ10+γ11)/2,
pushing the t-sum past the balanced optimum, while the best
(n−1)-adversary still matches ΠOptnSFE's level — so optimal fairness
survives.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import TOL, all_ok, emit

from repro.adversaries import LockWatchingAborter, SignalDeviator, fixed
from repro.analysis import (
    balance_profile,
    check_row,
    estimate_utility,
    u_opt_nsfe,
    u_unbalanced_opt,
)
from repro.core import STANDARD_GAMMA, balanced_sum_bound, monte_carlo_tolerance
from repro.functions import make_concat
from repro.protocols import UnbalancedOptProtocol

RUNS = 500
NS = (3, 4, 5)


def strategies_per_t(n):
    return {
        t: [
            fixed(f"lw{t}", lambda t=t: LockWatchingAborter(set(range(t)))),
            fixed(f"sd{t}", lambda t=t: SignalDeviator(set(range(t)))),
        ]
        for t in range(1, n)
    }


def run_experiment():
    gamma = STANDARD_GAMMA
    rows = []
    sums = {}
    for n in NS:
        protocol = UnbalancedOptProtocol(make_concat(n, 8))
        profile = balance_profile(
            protocol, strategies_per_t(n), gamma, n_runs=RUNS, seed=("e8", n)
        )
        for t in range(1, n):
            rows.append(
                check_row(
                    f"n={n} t={t} (best of lock-watch/deviate)",
                    u_unbalanced_opt(gamma, n, t),
                    profile.per_t[t].mean,
                    TOL,
                )
            )
        sums[n] = (profile.utility_sum, balanced_sum_bound(n, gamma))
    return rows, sums


def test_e08_unbalanced_optimal(benchmark, capsys):
    rows, sums = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        capsys,
        "E8 (Lemma 18)",
        "optimal fairness without utility balance (deviator boosts small t)",
        ["workload", "paper", "measured", "tol", "verdict"],
        rows,
    )
    assert all_ok(rows)
    for n, (measured_sum, bound) in sums.items():
        assert measured_sum > bound + 0.05  # strictly not balanced
