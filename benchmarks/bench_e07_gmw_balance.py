"""E7 — Lemma 17: Π½GMW is not utility-balanced for even n.

For even n the per-t profile is γ11 below n/2 and γ10 from n/2 up, so the
sum overshoots the balanced optimum by (γ10 − γ11)/2; for odd n it meets
the optimum exactly (the basis of the Π′ separation).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import all_ok, emit, per_t_lock_watchers

from repro.analysis import balance_profile, check_row, threshold_gmw_balance_sum, u_threshold_gmw
from repro.core import STANDARD_GAMMA, balanced_sum_bound, monte_carlo_tolerance
from repro.functions import make_concat
from repro.gmw import ThresholdGmwProtocol

RUNS = 250
NS = (3, 4, 5, 6)


def run_experiment():
    gamma = STANDARD_GAMMA
    rows = []
    overshoots = {}
    for n in NS:
        protocol = ThresholdGmwProtocol(make_concat(n, 8))
        profile = balance_profile(
            protocol, per_t_lock_watchers(n), gamma, n_runs=RUNS, seed=("e7", n)
        )
        for t in range(1, n):
            rows.append(
                check_row(
                    f"n={n} t={t}",
                    u_threshold_gmw(gamma, n, t),
                    profile.per_t[t].mean,
                    monte_carlo_tolerance(RUNS),
                )
            )
        analytic_sum = threshold_gmw_balance_sum(gamma, n)
        rows.append(
            check_row(
                f"n={n} Σ_t (balanced bound = "
                f"{balanced_sum_bound(n, gamma):.3f})",
                analytic_sum,
                profile.utility_sum,
                (n - 1) * monte_carlo_tolerance(RUNS),
            )
        )
        overshoots[n] = profile.utility_sum - balanced_sum_bound(n, gamma)
    return rows, overshoots


def test_e07_gmw_not_balanced_even_n(benchmark, capsys):
    rows, overshoots = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        capsys,
        "E7 (Lemma 17)",
        "Π½GMW per-t profile: even n overshoots the balanced sum by (γ10−γ11)/2",
        ["workload", "paper", "measured", "tol", "verdict"],
        rows,
    )
    assert all_ok(rows)
    excess = (STANDARD_GAMMA.gamma10 - STANDARD_GAMMA.gamma11) / 2
    for n, overshoot in overshoots.items():
        if n % 2 == 0:
            assert overshoot >= excess / 2  # strict overshoot
        else:
            assert abs(overshoot) <= excess / 2  # meets the bound
