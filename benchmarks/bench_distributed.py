"""Distributed venue — serial vs. localhost worker fleet.

Runs the same strategy sweep three ways:

1. **serial** — the in-process reference loop.
2. **distributed-2** — a coordinator fanning chunks out to two
   ``repro worker`` subprocesses over localhost TCP.
3. **distributed-faulty** — the same fleet, but with deterministic
   ``kind="exit"`` fault injection killing workers mid-batch, so the
   measured number includes death detection, chunk reassignment, and
   local drain.

Bit-identity across all three is asserted unconditionally — that is the
venue's core contract and must hold whatever the host looks like.  No
speedup is asserted: on a localhost fleet the chunk payloads are small
relative to framing/scheduling overhead, so the interesting numbers are
the *overhead ratio* (distributed vs serial wall clock) and the recovery
cost (faulty vs clean fleet), both recorded in
``BENCH_distributed.json`` at the repo root.

Runnable standalone (``python benchmarks/bench_distributed.py``) or
under pytest.
"""

import json
import os
import subprocess
import sys
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.adversaries import strategy_space_for_protocol
from repro.analysis import sweep_strategies
from repro.core import STANDARD_GAMMA
from repro.functions import make_swap
from repro.protocols import Opt2SfeProtocol
from repro.runtime import (
    NO_FAULTS,
    DistributedRunner,
    FaultSpec,
    RetryPolicy,
    SerialRunner,
)

N_RUNS = 200
CHUNK = 25
SEED = ("bench-distributed", 1)

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_distributed.json"


@contextmanager
def _fleet(n):
    env = os.environ.copy()
    src = Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    procs, addrs = [], []
    try:
        for _ in range(n):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--listen", "127.0.0.1:0", "--once"],
                stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                env=env, text=True,
            )
            procs.append(proc)
            info = json.loads(proc.stdout.readline())
            addrs.append((info["host"], info["port"]))
        yield addrs
    finally:
        for proc in procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


def _workload():
    protocol = Opt2SfeProtocol(make_swap(8))
    return protocol, strategy_space_for_protocol(protocol)[:4]


def _measure(runner_factory, fleet_size=0):
    protocol, space = _workload()
    if fleet_size:
        with _fleet(fleet_size) as addrs:
            t0 = time.perf_counter()
            result = sweep_strategies(
                protocol, space, STANDARD_GAMMA, n_runs=N_RUNS, seed=SEED,
                runner=runner_factory(addrs),
            )
            dt = time.perf_counter() - t0
    else:
        t0 = time.perf_counter()
        result = sweep_strategies(
            protocol, space, STANDARD_GAMMA, n_runs=N_RUNS, seed=SEED,
            runner=runner_factory(None),
        )
        dt = time.perf_counter() - t0
    return result, dt


def run_benchmark():
    serial, t_serial = _measure(lambda _: SerialRunner(chunk_size=CHUNK))

    clean_runner = {}

    def make_clean(addrs):
        clean_runner["r"] = DistributedRunner(
            addrs, chunk_size=CHUNK, fault=NO_FAULTS,
            retry=RetryPolicy(max_retries=2, backoff_s=0.01),
        )
        return clean_runner["r"]

    distributed, t_dist = _measure(make_clean, fleet_size=2)
    assert distributed == serial, "distributed sweep diverged from serial"
    stats = clean_runner["r"].stats_history
    assert any(s.backend == "distributed" for s in stats)

    faulty_runner = {}

    def make_faulty(addrs):
        faulty_runner["r"] = DistributedRunner(
            addrs, chunk_size=CHUNK,
            retry=RetryPolicy(max_retries=3, backoff_s=0.01),
            fault=FaultSpec(
                rate=0.4, kind="exit", seed="bench-kill", max_consecutive=1
            ),
        )
        return faulty_runner["r"]

    faulty, t_faulty = _measure(make_faulty, fleet_size=2)
    assert faulty == serial, "faulty-fleet sweep diverged from serial"
    fstats = faulty_runner["r"].stats_history
    deaths = sum(s.worker_deaths for s in fstats)

    report = {
        "n_runs": N_RUNS,
        "strategies": 4,
        "chunk_size": CHUNK,
        "cpus": os.cpu_count(),
        "serial_s": round(t_serial, 4),
        "distributed_2worker_s": round(t_dist, 4),
        "distributed_faulty_s": round(t_faulty, 4),
        "overhead_ratio": round(t_dist / t_serial, 3) if t_serial else None,
        "recovery_ratio": round(t_faulty / t_dist, 3) if t_dist else None,
        "worker_deaths_observed": deaths,
        "bit_identical": True,
    }
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return report


def test_distributed_benchmark():
    report = run_benchmark()
    assert report["bit_identical"]


if __name__ == "__main__":
    run_benchmark()
