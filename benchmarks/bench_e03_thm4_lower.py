"""E3 — Theorem 4 (+ Lemma 7): for fswp the strategy Agen collects at least
(γ10 + γ11)/2 against *every* protocol.

Runs Agen (random single corruption, lock-watching) against every two-party
protocol in the zoo that securely evaluates the swap function, plus the
Lemma-7 pair (A1, A2) whose utilities must sum to γ10 + γ11.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import RUNS, TOL, all_ok, emit

from repro.adversaries import (
    AdversaryFactory,
    RandomSingleCorruption,
    a1_strategy,
    a2_strategy,
    fixed,
)
from repro.analysis import bound_row, estimate_utility, u_opt_2sfe
from repro.core import STANDARD_GAMMA
from repro.functions import make_contract_exchange, make_swap
from repro.protocols import (
    CoinOrderedContractSigning,
    NaiveContractSigning,
    Opt2SfeProtocol,
    SingleRoundProtocol,
)


def protocols_for_swap():
    swap = make_swap(16)
    return [
        Opt2SfeProtocol(swap),
        SingleRoundProtocol(swap),
        NaiveContractSigning(make_contract_exchange(16)),
        CoinOrderedContractSigning(make_contract_exchange(16)),
    ]


def run_experiment():
    gamma = STANDARD_GAMMA
    agen = AdversaryFactory("a-gen", lambda rng: RandomSingleCorruption(2, rng))
    bound = u_opt_2sfe(gamma)
    rows = []
    for protocol in protocols_for_swap():
        est = estimate_utility(protocol, agen, gamma, RUNS, seed=("e3", protocol.name))
        rows.append(
            bound_row(f"u({protocol.name}, Agen)", bound, est.mean, TOL, kind=">=")
        )
    # Lemma 7: u(Π, A1) + u(Π, A2) >= γ10 + γ11.
    for protocol in protocols_for_swap():
        u1 = estimate_utility(
            protocol, fixed("a1", a1_strategy), gamma, RUNS, seed=("e3a", protocol.name)
        ).mean
        u2 = estimate_utility(
            protocol, fixed("a2", a2_strategy), gamma, RUNS, seed=("e3b", protocol.name)
        ).mean
        rows.append(
            bound_row(
                f"u({protocol.name}, A1) + u(·, A2)",
                gamma.gamma10 + gamma.gamma11,
                u1 + u2,
                2 * TOL,
                kind=">=",
            )
        )
    return rows


def test_e03_thm4_lower_bound(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        capsys,
        "E3 (Thm 4 / Lemma 7)",
        "Agen extracts ≥ (γ10+γ11)/2 from every swap protocol",
        ["attack", "bound", "measured", "tol", "verdict"],
        rows,
    )
    assert all_ok(rows)
