"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's quantitative claims (see
DESIGN.md §3) and prints a paper-vs-measured table; pytest-benchmark
records the wall-clock cost of the measurement itself.
"""

from __future__ import annotations

from repro.adversaries import LockWatchingAborter, corruption_sets, fixed
from repro.analysis import experiment_banner, format_table
from repro.core import monte_carlo_tolerance

#: Monte-Carlo budget for benchmark measurements.
RUNS = 600

#: Statistical tolerance paired with RUNS (plus a small model slack).
TOL = monte_carlo_tolerance(RUNS) + 0.02


def lock_watch_space(n, max_corruptions=None):
    """Lock-watching strategies over every corruption set."""
    return [
        fixed(f"lock-watch{sorted(s)}", lambda s=s: LockWatchingAborter(set(s)))
        for s in corruption_sets(n, max_corruptions)
    ]


def per_t_lock_watchers(n):
    """One prefix-coalition lock-watcher per corruption budget t."""
    return {
        t: [
            fixed(
                f"lock-watch-t{t}",
                lambda t=t: LockWatchingAborter(set(range(t))),
            )
        ]
        for t in range(1, n)
    }


def emit(capsys, exp_id: str, claim: str, headers, rows) -> None:
    """Print an experiment table past pytest's capture."""
    text = "\n".join(
        [experiment_banner(exp_id, claim), format_table(headers, rows), ""]
    )
    with capsys.disabled():
        print("\n" + text)


def all_ok(rows) -> bool:
    return all(row[-1] == "ok" for row in rows)
