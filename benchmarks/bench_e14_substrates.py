"""E14 — substrate soundness and micro-benchmarks.

Not a paper table: validates the substrates every experiment stands on
(GMW correctness + unfairness profile, crypto primitive throughput) and
records their costs.  GMW realizing unfair SFE is the premise of the
paper's phase-1 hybrids.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import emit

from repro.adversaries import LockWatchingAborter, PassiveAdversary
from repro.circuits import millionaires_circuit
from repro.core import FairnessEvent, classify
from repro.crypto import Rng, commit, deal, gen, gen_mac_key, reconstruct, sign, tag, ver
from repro.engine import run_execution
from repro.functions import make_millionaires
from repro.gmw import GmwProtocol


def gmw_sweep():
    """GMW correctness over a random input sample + unfairness profile."""
    spec = make_millionaires(4)
    protocol = GmwProtocol(millionaires_circuit(4), [4, 4], spec)
    rng = Rng("e14")
    correct = 0
    trials = 25
    for k in range(trials):
        x = rng.randrange(16)
        y = rng.randrange(16)
        result = run_execution(
            protocol, (x, y), PassiveAdversary(), rng.fork(f"g{k}")
        )
        if result.outputs[0].value == (1 if x > y else 0):
            correct += 1
    unfair = 0
    for k in range(trials):
        result = run_execution(
            protocol,
            (rng.randrange(16), rng.randrange(16)),
            LockWatchingAborter({0}),
            rng.fork(f"a{k}"),
        )
        if classify(result, spec) is FairnessEvent.E10:
            unfair += 1
    return correct / trials, unfair / trials, len(protocol.circuit)


def test_e14_gmw_substrate(benchmark, capsys):
    correct, unfair, gates = benchmark.pedantic(gmw_sweep, rounds=1, iterations=1)
    rows = [
        ["GMW millionaires-4 correctness", 1.0, correct, 0.0,
         "ok" if correct == 1.0 else "VIOLATED"],
        ["GMW rushing-abort unfairness (E10 rate)", 1.0, unfair, 0.0,
         "ok" if unfair == 1.0 else "VIOLATED"],
        ["circuit size (gates)", "-", gates, "-", "ok"],
    ]
    emit(
        capsys,
        "E14a (substrate)",
        "GMW realizes unfair SFE: always correct, always E10 under rushing abort",
        ["quantity", "paper", "measured", "tol", "verdict"],
        rows,
    )
    assert correct == 1.0 and unfair == 1.0


def broadcast_sweep():
    """Dolev–Strong: validity with honest senders, agreement under a
    worst-case equivocating sender (the ideal broadcast channel the
    engine and the paper assume, realized from p2p + PKI)."""
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tests"))
    from test_broadcast import EquivocatingSender

    from repro.protocols import DolevStrongBroadcast, NO_VALUE

    rng = Rng("e14-bc")
    valid = agree = 0
    trials = 20
    for k in range(trials):
        protocol = DolevStrongBroadcast(5, sender=0)
        value = rng.randrange(1 << 16)
        result = run_execution(
            protocol,
            (value, 0, 0, 0, 0),
            PassiveAdversary(),
            rng.fork(f"v{k}"),
        )
        if all(rec.value == value for rec in result.outputs.values()):
            valid += 1
        result = run_execution(
            protocol,
            (0, 0, 0, 0, 0),
            EquivocatingSender(),
            rng.fork(f"e{k}"),
        )
        outputs = {rec.value for rec in result.outputs.values()}
        if outputs == {NO_VALUE}:
            agree += 1
    return valid / trials, agree / trials


def test_e14_broadcast_substrate(benchmark, capsys):
    valid, agree = benchmark.pedantic(broadcast_sweep, rounds=1, iterations=1)
    rows = [
        ["Dolev–Strong validity (honest sender)", 1.0, valid, 0.0,
         "ok" if valid == 1.0 else "VIOLATED"],
        ["Dolev–Strong agreement (equivocating sender)", 1.0, agree, 0.0,
         "ok" if agree == 1.0 else "VIOLATED"],
    ]
    emit(
        capsys,
        "E14b (substrate)",
        "authenticated broadcast realizes the engine's ideal channel",
        ["quantity", "paper", "measured", "tol", "verdict"],
        rows,
    )
    assert valid == 1.0 and agree == 1.0


def test_e14_mac_throughput(benchmark):
    rng = Rng("mac-bench")
    key = gen_mac_key(rng)
    benchmark(lambda: tag(123456789, key))


def test_e14_commitment_throughput(benchmark):
    rng = Rng("com-bench")
    benchmark(lambda: commit(123456789, rng))


def test_e14_lamport_keygen(benchmark):
    rng = Rng("sig-bench")
    benchmark(lambda: gen(rng))


def test_e14_lamport_sign_verify(benchmark):
    rng = Rng("sv-bench")
    sk, vk = gen(rng)

    def sign_and_verify():
        assert ver("y", sign("y", sk), vk)

    benchmark(sign_and_verify)


def test_e14_authenticated_sharing(benchmark):
    rng = Rng("share-bench")

    def deal_and_reconstruct():
        s1, s2 = deal(99, rng)
        assert reconstruct(s1, s2.wire_message()) == 99

    benchmark(deal_and_reconstruct)


def test_e14_full_opt2sfe_execution(benchmark):
    from repro.functions import make_swap
    from repro.protocols import Opt2SfeProtocol

    protocol = Opt2SfeProtocol(make_swap(16))
    rng = Rng("exec-bench")
    counter = [0]

    def one_execution():
        counter[0] += 1
        run_execution(
            protocol, (3, 9), LockWatchingAborter({0}), rng.fork(str(counter[0]))
        )

    benchmark(one_execution)
