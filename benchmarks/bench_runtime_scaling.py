"""Runtime scaling — serial vs. process-pool Monte-Carlo throughput,
plus the cost of fault tolerance.

A ``sweep_strategies`` workload of ≥ 2400 total executions (the full
ΠOpt2SFE standard strategy space) is run once through ``SerialRunner``
and once through ``ProcessPoolRunner(jobs=4)``.  Both backends must
produce bit-identical estimates; the pedantic benchmark rounds record the
parallel run, and executions/sec for both backends go into the benchmark
JSON trajectory via ``extra_info``.  The ≥ 2× speedup assertion is gated
on the host actually having ≥ 4 CPUs — on smaller machines the numbers
are recorded without a verdict.

A third pass re-runs the pool sweep with deterministic fault injection
(``FaultSpec``) so the trajectory also tracks the recovery machinery:
failed attempts, in-pool retries, serial replays, and the throughput
penalty of absorbing them — with the hard assertion that the recovered
results are bit-identical to the failure-free ones.
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import emit

from repro.adversaries import strategy_space_for_protocol
from repro.analysis import sweep_strategies
from repro.core import STANDARD_GAMMA
from repro.functions import make_swap
from repro.protocols import Opt2SfeProtocol
from repro.runtime import FaultSpec, ProcessPoolRunner, RetryPolicy, SerialRunner

RUNS = 150  # × 16 strategies = 2400 executions per backend
JOBS = 4
FAULT_RATE = 0.1


def _workload():
    protocol = Opt2SfeProtocol(make_swap(16))
    space = strategy_space_for_protocol(protocol)
    return protocol, space


def test_runtime_scaling(benchmark, capsys):
    protocol, space = _workload()
    total = RUNS * len(space)
    assert total >= 2400

    serial = SerialRunner()
    serial_estimates = sweep_strategies(
        protocol, space, STANDARD_GAMMA, RUNS, seed="scaling", runner=serial
    )
    serial_stats = serial.last_stats

    pool = ProcessPoolRunner(JOBS, min_parallel_runs=0)

    def parallel_sweep():
        return sweep_strategies(
            protocol, space, STANDARD_GAMMA, RUNS, seed="scaling", runner=pool
        )

    parallel_estimates = benchmark.pedantic(parallel_sweep, rounds=1, iterations=1)
    pool_stats = pool.last_stats

    # Determinism first: the speedup must not change a single count.
    assert parallel_estimates == serial_estimates

    # Fault-injected pass: same sweep, deterministic chunk failures.  The
    # recovery ladder (in-pool retries, then in-process replay) must hand
    # back bit-identical estimates; the throughput penalty is recorded.
    faulty_pool = ProcessPoolRunner(
        JOBS,
        min_parallel_runs=0,
        retry=RetryPolicy(max_retries=2, backoff_s=0.01),
        fault=FaultSpec(rate=FAULT_RATE, seed="bench-faults"),
    )
    faulty_estimates = sweep_strategies(
        protocol, space, STANDARD_GAMMA, RUNS, seed="scaling", runner=faulty_pool
    )
    fault_stats = faulty_pool.last_stats
    assert faulty_estimates == serial_estimates

    speedup = pool_stats.executions_per_sec / serial_stats.executions_per_sec
    cpus = os.cpu_count() or 1
    benchmark.extra_info.update(
        {
            "total_executions": total,
            "serial_eps": round(serial_stats.executions_per_sec, 1),
            "parallel_eps": round(pool_stats.executions_per_sec, 1),
            "jobs": JOBS,
            "cpus": cpus,
            "speedup": round(speedup, 3),
            "fault_rate": FAULT_RATE,
            "fault_eps": round(fault_stats.executions_per_sec, 1),
            "fault_failed_attempts": fault_stats.failed_attempts,
            "fault_retries": fault_stats.retries,
            "fault_serial_replays": fault_stats.serial_replays,
            "fault_overhead": round(
                pool_stats.executions_per_sec
                / max(fault_stats.executions_per_sec, 1e-9),
                3,
            ),
        }
    )

    enough_cpus = cpus >= JOBS
    verdict = (
        ("ok" if speedup >= 2.0 else "FAIL")
        if enough_cpus
        else f"recorded ({cpus} cpu)"
    )
    emit(
        capsys,
        "Runtime scaling",
        f"ProcessPoolRunner(jobs={JOBS}) ≥ 2× serial throughput on a "
        f"{total}-execution sweep (gated on ≥ {JOBS} CPUs)",
        ["backend", "executions", "wall s", "exec/s", "verdict"],
        [
            [
                serial_stats.backend,
                serial_stats.executions,
                f"{serial_stats.wall_clock_s:.2f}",
                f"{serial_stats.executions_per_sec:.0f}",
                "",
            ],
            [
                pool_stats.backend,
                pool_stats.executions,
                f"{pool_stats.wall_clock_s:.2f}",
                f"{pool_stats.executions_per_sec:.0f}",
                f"{speedup:.2f}x {verdict}",
            ],
            [
                f"{fault_stats.backend}+faults",
                fault_stats.executions,
                f"{fault_stats.wall_clock_s:.2f}",
                f"{fault_stats.executions_per_sec:.0f}",
                f"{fault_stats.failed_attempts} failures absorbed "
                f"({fault_stats.retries} retries, "
                f"{fault_stats.serial_replays} replays)",
            ],
        ],
    )
    if enough_cpus:
        assert speedup >= 2.0, f"speedup {speedup:.2f}x below 2x on {cpus} CPUs"
