"""E18 (ablation) — the price of fairness: the utility-vs-rounds frontier.

The paper's two-sided optimality story: ΠOpt2SFE is both optimally fair
for arbitrary functions *and* reconstruction-round-optimal (Lemmas 9-10),
while for poly-domain functions the GK protocols buy arbitrarily low
unfairness with linearly many rounds (Theorem 23).  We chart every
two-party protocol on the (best-attack utility, rounds) plane and verify
the expected Pareto frontier: Π1 is cheapest and unfairest, ΠOpt2SFE is
the 4-round optimum, the GK points trade rounds for utility, and the
single-round/gradual-release strawmen are strictly dominated.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import emit, lock_watch_space

from repro.adversaries import KnownOutputStopper, fixed
from repro.analysis import fairness_cost_frontier, pareto_optimal
from repro.core import PARTIAL_FAIRNESS_GAMMA
from repro.functions import make_and
from repro.protocols import (
    GordonKatzProtocol,
    GradualReleaseProtocol,
    NaiveContractSigning,
    Opt2SfeProtocol,
    SingleRoundProtocol,
)
from repro.functions import make_contract_exchange

RUNS = 300


def run_experiment():
    # Common task: AND (so the GK protocols are admissible); the pure
    # unfairness-probability payoff γ = (0,0,1,0) makes utilities
    # comparable across the Fsfe⊥ and Fsfe$ regimes.
    gamma = PARTIAL_FAIRNESS_GAMMA
    and_fn = make_and()
    lw = lock_watch_space(2)
    gk_strategies = [
        fixed("gk-known-0", lambda: KnownOutputStopper(0, known_output=1)),
        fixed("gk-known-1", lambda: KnownOutputStopper(1, known_output=1)),
    ]
    entries = [
        (NaiveContractSigning(make_contract_exchange(16)), lw),
        (SingleRoundProtocol(and_fn), lw),
        (GradualReleaseProtocol(and_fn), lw),
        (Opt2SfeProtocol(and_fn), lw),
        (GordonKatzProtocol(and_fn, p=2), gk_strategies),
        (GordonKatzProtocol(and_fn, p=4), gk_strategies),
    ]
    points = fairness_cost_frontier(
        entries, gamma, n_runs_utility=RUNS, n_runs_cost=10, seed="e18"
    )
    frontier = {p.protocol_name for p in pareto_optimal(points)}
    rows = [
        [
            p.protocol_name,
            f"{p.utility:.4f}",
            f"{p.rounds:.0f}",
            f"{p.total_messages:.0f}",
            "frontier" if p.protocol_name in frontier else "dominated",
        ]
        for p in points
    ]
    return rows, points, frontier


def test_e18_cost_of_fairness(benchmark, capsys):
    rows, points, frontier = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    emit(
        capsys,
        "E18 (cost-of-fairness frontier)",
        "utility (γ=(0,0,1,0)) vs rounds: fairness is bought with rounds",
        ["protocol", "best-attack utility", "rounds", "messages", "pareto"],
        rows,
    )
    by_name = {p.protocol_name: p for p in points}
    # The strawmen are unfair at minimal rounds; ΠOpt2SFE halves the
    # utility at 4 rounds; GK keeps buying utility with rounds.
    assert by_name["pi1-naive"].utility > 0.9
    assert abs(by_name["opt-2sfe[and]"].utility - 0.5) < 0.09
    gk2 = by_name["gk-domain[and,p=2]"]
    gk4 = by_name["gk-domain[and,p=4]"]
    assert gk2.utility < 0.5 and gk4.utility < gk2.utility + 0.05
    assert gk4.rounds > gk2.rounds > by_name["opt-2sfe[and]"].rounds
    # ΠOpt2SFE and the GK points sit on the frontier; the single-round and
    # gradual-release strawmen are dominated by Π1 (same utility, fewer
    # rounds) or by ΠOpt2SFE.
    assert "opt-2sfe[and]" in frontier
    assert "gk-domain[and,p=2]" in frontier
    assert "gradual-release[and]" not in frontier
