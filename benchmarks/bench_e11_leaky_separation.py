"""E11 — Lemmas 26/27: Π̃ separates 1/p-security + privacy from Fsfe$.

Three measurements: (a) the Z1/Z2 distinguisher probabilities are equal in
the real world, violating the ¾-bound any Fsfe$ simulator must satisfy
(Lemma 26); (b) the corrupted view is perfectly simulatable by the
x2' = 1 privacy simulator (Lemma 27, privacy); (c) the embedded 1/4-secure
stage keeps the honest sub-protocol outcome within the 1/2-security budget
(Lemma 27, security).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import all_ok, emit

from repro.analysis import (
    leaky_distinguisher_probabilities,
    leaky_ideal_bound_violated,
    leaky_privacy_distance,
    leaky_real_views,
    statistical_distance,
)

RUNS = 1200


def run_experiment():
    rows = []
    p_z1, p_z2 = leaky_distinguisher_probabilities(n_runs=RUNS, seed="e11")
    rows.append(["Pr[Z2 = 1] (leak rate)", 0.25, p_z2, 0.04,
                 "ok" if abs(p_z2 - 0.25) < 0.04 else "MISMATCH"])
    rows.append(["Pr[Z1 = 1] (real world)", f"≈ Pr[Z2]", p_z1, 0.03,
                 "ok" if abs(p_z1 - p_z2) < 0.03 else "MISMATCH"])
    violated = leaky_ideal_bound_violated(p_z1, p_z2, tolerance=0.03)
    rows.append(
        [
            "Fsfe$ simulator bound Pr[Z1] ≤ ¾·Pr[Z2] violated",
            "yes (Lemma 26)",
            "yes" if violated else "no",
            "-",
            "ok" if violated else "VIOLATED",
        ]
    )
    privacy = leaky_privacy_distance(n_runs=800, seed="e11p")
    baseline = statistical_distance(
        leaky_real_views(800, "e11-b1"), leaky_real_views(800, "e11-b2")
    )
    rows.append(
        [
            "privacy: real-vs-simulated view distance",
            f"≈ 0 (noise {baseline:.3f})",
            privacy,
            0.05,
            "ok" if privacy <= baseline + 0.05 else "VIOLATED",
        ]
    )
    return rows


def test_e11_leaky_separation(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        capsys,
        "E11 (Lemmas 26/27)",
        "Π̃: 1/2-secure and fully private, yet not an Fsfe$ realization",
        ["quantity", "paper", "measured", "tol", "verdict"],
        rows,
    )
    assert all_ok(rows)
