"""E6 — Lemmas 14/16: the utility-balance sum.

Σ_{t=1}^{n−1} u(ΠOptnSFE, A_t) = (n−1)(γ10 + γ11)/2, and by Lemma 16 no
protocol sums below it (checked against the dummy fair protocol, whose sum
(n−1)·γ11 is *below* only because it is unimplementable without the trusted
party — included as the reference line).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import all_ok, emit, per_t_lock_watchers

from repro.analysis import balance_profile, check_row
from repro.core import STANDARD_GAMMA, balanced_sum_bound, is_utility_balanced
from repro.core import monte_carlo_tolerance
from repro.functions import make_concat
from repro.protocols import OptNSfeProtocol

RUNS = 400
NS = (3, 4, 5, 6, 7)


def run_experiment():
    gamma = STANDARD_GAMMA
    rows = []
    profiles = []
    for n in NS:
        protocol = OptNSfeProtocol(make_concat(n, 8))
        profile = balance_profile(
            protocol, per_t_lock_watchers(n), gamma, n_runs=RUNS, seed=("e6", n)
        )
        bound = balanced_sum_bound(n, gamma)
        rows.append(
            check_row(
                f"n={n} Σ_t u(ΠOptnSFE, A_t)",
                bound,
                profile.utility_sum,
                (n - 1) * monte_carlo_tolerance(RUNS),
            )
        )
        profiles.append(profile)
    return rows, profiles


def test_e06_balance_sum(benchmark, capsys):
    rows, profiles = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        capsys,
        "E6 (Lemmas 14/16)",
        "Σ_t u(ΠOptnSFE, A_t) attains the balanced optimum (n−1)(γ10+γ11)/2",
        ["workload", "paper", "measured", "tol", "verdict"],
        rows,
    )
    assert all_ok(rows)
    for profile in profiles:
        tol = (profile.n - 1) * monte_carlo_tolerance(RUNS)
        assert is_utility_balanced(profile, tol=tol)
