"""E1 — §1 opening example: Π2 is "twice as fair" as Π1.

Paper claim: the best attacker against Π1 always obtains maximum utility
γ10, while Π2 reduces the unfair branch to probability 1/2, yielding
(γ10 + γ11)/2.  Sweep over Γfair vectors.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import RUNS, TOL, all_ok, emit, lock_watch_space

from repro.analysis import (
    assess_protocol,
    build_order,
    check_row,
    u_coin_contract,
    u_naive_contract,
)
from repro.core import PayoffVector, STANDARD_GAMMA
from repro.protocols import CoinOrderedContractSigning, NaiveContractSigning

GAMMAS = [
    STANDARD_GAMMA,
    PayoffVector(0.0, 0.0, 1.0, 0.0),
    PayoffVector(0.25, 0.0, 2.0, 0.75),
]


def run_experiment():
    strategies = lock_watch_space(2)
    rows = []
    orders = []
    for gamma in GAMMAS:
        pi1 = assess_protocol(
            NaiveContractSigning(), strategies, gamma, RUNS, seed=("e1", 1)
        )
        pi2 = assess_protocol(
            CoinOrderedContractSigning(), strategies, gamma, RUNS, seed=("e1", 2)
        )
        scale = gamma.gamma10
        rows.append(
            check_row(
                f"u(Π1) {gamma}", u_naive_contract(gamma), pi1.utility,
                TOL * scale,
            )
        )
        rows.append(
            check_row(
                f"u(Π2) {gamma}", u_coin_contract(gamma), pi2.utility,
                TOL * scale,
            )
        )
        orders.append(build_order([pi1, pi2], tolerance=TOL * scale))
    return rows, orders


def test_e01_intro_contract(benchmark, capsys):
    rows, orders = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        capsys,
        "E1 (§1)",
        "Π2 (coin-ordered) is strictly fairer than Π1 (naive)",
        ["quantity", "paper", "measured", "tol", "verdict"],
        rows,
    )
    assert all_ok(rows)
    for order in orders:
        assert order.strictly_fairer("pi2-coin", "pi1-naive")
