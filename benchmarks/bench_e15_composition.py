"""E15 (ablation) — composability of the fairness measure.

The paper stresses that its quantitative notion composes: a hybrid inside
a fair/optimal protocol can be replaced by a protocol securely realizing it
without changing the fairness assessment (RPD composition theorem).  Two
instantiations, measured:

1. Π2 with its real commit-then-open coin toss vs Π2 in the Fct-hybrid
   model — identical best-attack utilities.
2. Unfair SFE: the real GMW protocol vs the dummy Fsfe⊥-hybrid protocol —
   both concede exactly γ10 to a rushing lock-watcher.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import RUNS, TOL, all_ok, emit, lock_watch_space

from repro.analysis import assess_protocol, check_row, estimate_utility
from repro.adversaries import LockWatchingAborter, fixed
from repro.circuits import and_circuit
from repro.core import STANDARD_GAMMA
from repro.engine import ABORT, Inbox, PartyMachine, Protocol
from repro.functionalities import SfeWithAbort
from repro.functions import make_and, make_contract_exchange
from repro.gmw import GmwProtocol
from repro.protocols import CoinOrderedContractSigning, IdealCoinContractSigning


class _AbortSfeDummy(Protocol):
    """The Fsfe⊥-hybrid dummy protocol (ideal counterpart of GMW)."""

    name = "dummy-sfe-abort[and]"
    n_parties = 2
    max_rounds = 2

    def __init__(self):
        self.func = make_and()

    def build_machines(self, rng):
        class M(PartyMachine):
            def on_round(self, round_no, inbox, ctx):
                if round_no == 0:
                    ctx.call(SfeWithAbort.name, self.input)
                elif round_no == 1:
                    payload = inbox.from_functionality(SfeWithAbort.name)
                    if payload is ABORT or payload is None:
                        ctx.output_abort()
                    else:
                        ctx.output(payload)

        return [M(i, 2) for i in range(2)]

    def build_functionalities(self, rng):
        return {SfeWithAbort.name: SfeWithAbort(self.func)}


def run_experiment():
    gamma = STANDARD_GAMMA
    rows = []

    # (1) Real vs ideal coin toss inside Π2.
    strategies = lock_watch_space(2)
    real = assess_protocol(
        CoinOrderedContractSigning(make_contract_exchange(16)),
        strategies, gamma, RUNS, seed="e15-real",
    )
    ideal = assess_protocol(
        IdealCoinContractSigning(make_contract_exchange(16)),
        strategies, gamma, RUNS, seed="e15-ideal",
    )
    rows.append(
        check_row("Π2 real coin vs Fct-hybrid", ideal.utility, real.utility, 2 * TOL)
    )
    rows.append(check_row("Π2 (both) vs (γ10+γ11)/2", 0.75, real.utility, TOL))

    # (2) Real GMW vs the Fsfe⊥-hybrid dummy: the sup over each protocol's
    # strategy space must coincide (GMW securely realizes Fsfe⊥), and both
    # equal γ10 — the rushing aborter / ask-then-abort attack.
    from repro.adversaries import strategy_space_for_protocol

    gmw = GmwProtocol(and_circuit(), [1, 1], make_and())
    u_gmw = assess_protocol(
        gmw, strategy_space_for_protocol(gmw), gamma, 300, seed="e15-gmw"
    ).utility
    dummy = _AbortSfeDummy()
    u_dummy = assess_protocol(
        dummy, strategy_space_for_protocol(dummy), gamma, 300, seed="e15-dummy"
    ).utility
    rows.append(check_row("GMW vs Fsfe⊥-dummy (sup over space)", u_dummy, u_gmw, TOL))
    rows.append(check_row("both concede γ10", gamma.gamma10, u_gmw, TOL))
    return rows


def test_e15_composition(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        capsys,
        "E15 (composition ablation)",
        "replacing a hybrid with its secure realization preserves fairness",
        ["comparison", "reference", "measured", "tol", "verdict"],
        rows,
    )
    assert all_ok(rows)
