"""E4 — Lemmas 9/10: reconstruction-round counts.

ΠOpt2SFE has exactly two reconstruction rounds; the single-round strawman
has one, and its unfair round concedes γ10 with certainty; the dummy
protocol has zero.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import emit

from repro.analysis import measure_reconstruction_rounds
from repro.functions import make_swap
from repro.protocols import DummyProtocol, Opt2SfeProtocol, SingleRoundProtocol

RUNS = 250


def run_experiment():
    swap = make_swap(16)
    rows = []
    expectations = [
        (Opt2SfeProtocol(swap), 2),
        (SingleRoundProtocol(swap), 1),
        (DummyProtocol(swap), 0),
    ]
    measurements = []
    for protocol, expected in expectations:
        m = measure_reconstruction_rounds(protocol, n_runs=RUNS, seed="e4")
        measured = m.reconstruction_rounds
        rows.append(
            [
                protocol.name,
                expected,
                measured,
                "{"
                + ", ".join(
                    f"r{r}:{p:.2f}" for r, p in sorted(m.unfair_probability.items())
                )
                + "}",
                "ok" if measured == expected else "MISMATCH",
            ]
        )
        measurements.append(m)
    return rows, measurements


def test_e04_reconstruction_rounds(benchmark, capsys):
    rows, measurements = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        capsys,
        "E4 (Lemmas 9/10, Def. 8)",
        "reconstruction-round counts and per-round unfair-abort rates",
        ["protocol", "paper", "measured", "Pr[E10] per abort round", "verdict"],
        rows,
    )
    assert all(row[-1] == "ok" for row in rows)
    # Lemma 10: the strawman's unfair round is unfair with certainty.
    single = measurements[1]
    assert single.unfair_probability[1] >= 0.95
