"""E12 — Lemma 25 (+ Theorem 23's simulation): utility-based fairness
implies 1/p-security.

Two measured premises: with ~γ = (0,0,1,0) every stopping-rule adversary's
utility against the GK protocol is ≤ 1/p, and the protocol's real outcome
distribution is statistically indistinguishable from the Fsfe$-ideal one
produced by the explicit simulator — together, the Lemma-25 implication.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import all_ok, emit

from repro.adversaries import FixedRoundStopper, KnownOutputStopper
from repro.analysis import (
    gk_e10_probability,
    gk_real_outcomes,
    gk_realization_distance,
    statistical_distance,
)
from repro.functions import make_and
from repro.protocols import GordonKatzProtocol

RUNS = 400
P = 4


def run_experiment():
    protocol = GordonKatzProtocol(make_and(), p=P)
    inputs = (1, 1)
    stoppers = {
        "known-output": lambda: KnownOutputStopper(0, known_output=1),
        "fixed@0": lambda: FixedRoundStopper(0, stop_index=0),
        "fixed@7": lambda: FixedRoundStopper(0, stop_index=7),
        "known-output-p2": lambda: KnownOutputStopper(1, known_output=1),
    }
    rows = []
    for name, builder in stoppers.items():
        utility = gk_e10_probability(
            protocol, builder, inputs, n_runs=RUNS, seed=("e12", name)
        )
        rows.append(
            [
                f"û({name}) with γ=(0,0,1,0)",
                f"<= 1/p = {1/P:.3f}",
                utility,
                0.04,
                "ok" if utility <= 1 / P + 0.04 else "VIOLATED",
            ]
        )
        distance = gk_realization_distance(
            protocol, builder, inputs, n_runs=RUNS, seed=("e12d", name)
        )
        baseline = statistical_distance(
            gk_real_outcomes(protocol, builder, inputs, RUNS, ("b1", name)),
            gk_real_outcomes(protocol, builder, inputs, RUNS, ("b2", name)),
        )
        rows.append(
            [
                f"real-vs-Fsfe$-ideal distance ({name})",
                f"≈ 0 (noise {baseline:.3f})",
                distance,
                0.06,
                "ok" if distance <= baseline + 0.06 else "VIOLATED",
            ]
        )
    return rows


def test_e12_implication(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        capsys,
        "E12 (Lemma 25 / Thm 23)",
        "γ=(0,0,1,0) utility ≤ 1/p + simulation ⇒ 1/p-security",
        ["quantity", "paper", "measured", "tol", "verdict"],
        rows,
    )
    assert all_ok(rows)
