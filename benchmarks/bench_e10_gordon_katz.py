"""E10 — Theorems 23/24: Gordon–Katz 1/p-security bounds and round counts.

Sweeps p: the round count grows as O(p·|Y|) (domain variant) and O(p²·|Z|)
(range variant); the worst-case known-output stopper's Pr[E10] — the
attacker utility under ~γ = (0,0,1,0) — stays below 1/p and matches the
exact analytic stopping probability.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import all_ok, emit

from repro.adversaries import KnownOutputStopper
from repro.analysis import check_row, gk_e10_probability
from repro.analysis.analytic import gk_known_output_e10
from repro.functions import make_and
from repro.protocols import GordonKatzProtocol

RUNS = 400
PS = (2, 4, 8)


def run_experiment():
    rows = []
    for p in PS:
        protocol = GordonKatzProtocol(make_and(), p=p)
        rows.append(
            check_row(
                f"domain p={p} rounds (= 20·p·|Y|)",
                20 * p * 2,
                protocol.reveal_rounds,
                0,
            )
        )
        # Worst-case attack: environment hands the adversary y = 1.
        measured = gk_e10_probability(
            protocol,
            lambda: KnownOutputStopper(0, known_output=1),
            (1, 1),
            n_runs=RUNS,
            seed=("e10", p),
        )
        analytic = gk_known_output_e10(protocol.alpha, 0.5, 0.5)
        rows.append(
            check_row(f"domain p={p} Pr[E10] (≤ 1/p = {1/p:.3f})", analytic, measured, 0.05)
        )
        assert measured <= 1 / p + 0.04
    for p in (2, 3):
        protocol = GordonKatzProtocol(make_and(), p=p, variant="range")
        rows.append(
            check_row(
                f"range p={p} rounds (= 20·p²·|Z|)",
                20 * p * p * 2,
                protocol.reveal_rounds,
                0,
            )
        )
    return rows


def test_e10_gordon_katz(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        capsys,
        "E10 (Thms 23/24)",
        "GK protocols: O(p·|Y|)/O(p²·|Z|) rounds, attacker utility ≤ 1/p",
        ["quantity", "paper", "measured", "tol", "verdict"],
        rows,
    )
    assert all_ok(rows)
