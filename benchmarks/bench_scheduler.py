"""Cost-aware scheduler — uniform vs. cost chunk plans on the pool.

One deliberately heterogeneous sweep — the Gordon–Katz 1/p=4 protocol
under a passive adversary (~484 cost units/run, reference engine only)
next to cheap vectorizable workloads (~7–31 units/run) — executed twice
on the same :class:`ProcessPoolRunner`:

1. **uniform** — every task chunked by ``default_chunk_size`` alone
   (``--schedule uniform``), so the expensive task's chunks are as
   coarse as the cheap ones' and the batch's makespan is hostage to
   whichever worker drew the last Gordon–Katz chunk.
2. **cost** — chunk sizes scaled by the symbolic cost models and
   predicted-expensive chunks dispatched first (``--schedule cost``).

Bit-identity is asserted unconditionally: chunking is
composition-invariant, so both passes must produce byte-identical event
counts.  The wall-clock verdict — cost ≥ 1.2× uniform — is asserted
only at the ``large`` budget on a machine with ≥ 4 CPUs; with fewer
cores there is no load to balance, so the numbers are recorded
report-only.  Results are written to ``BENCH_scheduler.json`` at the
repo root.

Runnable standalone (``python benchmarks/bench_scheduler.py [--budget
small|large]``, default large) or under pytest (budget from
``REPRO_BENCH_BUDGET``, default small).
"""

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.adversaries import (
    KnownOutputStopper,
    LockWatchingAborter,
    PassiveAdversary,
    fixed,
)
from repro.functions import make_and
from repro.protocols import (
    GordonKatzProtocol,
    GradualReleaseProtocol,
    SingleRoundProtocol,
)
from repro.runtime import ExecutionTask, ProcessPoolRunner
from repro.verify.claims import constant_inputs

SPEEDUP_FLOOR = 1.2
#: Below this the pool has no imbalance worth scheduling around.
MIN_ASSERT_CPUS = 4

#: Runs per workload at the ``large`` budget; ``small`` divides by 8.
LARGE_RUNS = {
    "gordon-katz-p4-passive": 320,
    "gordon-katz-p2-stopper": 960,
    "single-round": 960,
    "gradual-release": 960,
}

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"


def _workloads(scale: int):
    passive = fixed("passive", lambda: PassiveAdversary())
    known = fixed(
        "known-output", lambda: KnownOutputStopper(0, known_output=1)
    )
    lock0 = fixed("lock-watch[0]", lambda: LockWatchingAborter({0}))
    sampler = constant_inputs((1, 1))
    protos = {
        # The heavy tail: passive play runs all 162 rounds and has no
        # vectorized kernel, so each run costs ~35-70x the cheap tasks'.
        "gordon-katz-p4-passive": (
            GordonKatzProtocol(make_and(), p=4), passive
        ),
        "gordon-katz-p2-stopper": (GordonKatzProtocol(make_and(), p=2), known),
        "single-round": (SingleRoundProtocol(make_and()), lock0),
        "gradual-release": (GradualReleaseProtocol(make_and()), lock0),
    }
    return [
        (
            name,
            ExecutionTask(
                protocol,
                factory,
                max(1, LARGE_RUNS[name] // scale),
                seed=("bench-scheduler", name),
                input_sampler=sampler,
            ),
        )
        for name, (protocol, factory) in protos.items()
    ]


def _sweep(schedule: str, scale: int, jobs: int):
    runner = ProcessPoolRunner(jobs, cache=None, schedule=schedule)
    tasks = [task for _, task in _workloads(scale)]
    t0 = time.perf_counter()
    results = runner.run(tasks)
    wall = time.perf_counter() - t0
    stats = runner.last_stats
    return results, wall, stats


def run_benchmark(budget: str = "large"):
    if budget not in ("small", "large"):
        raise SystemExit(f"unknown budget {budget!r}; use small or large")
    scale = 1 if budget == "large" else 8
    cpus = os.cpu_count() or 1
    jobs = max(2, cpus)

    names = [name for name, _ in _workloads(scale)]
    uni_results, uni_s, uni_stats = _sweep("uniform", scale, jobs)
    cost_results, cost_s, cost_stats = _sweep("cost", scale, jobs)

    # Bit-identity is the scheduler's contract — asserted at every
    # budget: chunk plans change, merged event counts must not.
    total_runs = 0
    for name, uni, cost in zip(names, uni_results, cost_results):
        assert uni.counts == cost.counts, f"{name}: event counts diverged"
        assert uni.corruption_counts == cost.corruption_counts, (
            f"{name}: corruption counts diverged"
        )
        total_runs += uni.total

    speedup = uni_s / max(cost_s, 1e-9)
    asserted = budget == "large" and cpus >= MIN_ASSERT_CPUS
    payload = {
        "workload": {
            "runs": {
                name: max(1, LARGE_RUNS[name] // scale)
                for name in LARGE_RUNS
            },
            "total_runs": total_runs,
        },
        "budget": budget,
        "cpus": cpus,
        "jobs": jobs,
        "passes": {
            "uniform": {
                "wall_s": round(uni_s, 4),
                "n_chunks": uni_stats.n_chunks,
                "backend": uni_stats.backend,
            },
            "cost": {
                "wall_s": round(cost_s, 4),
                "n_chunks": cost_stats.n_chunks,
                "backend": cost_stats.backend,
            },
        },
        "speedup_cost_vs_uniform": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "min_assert_cpus": MIN_ASSERT_CPUS,
        "asserted": asserted,
        "bit_identical": True,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    if asserted:
        assert speedup >= SPEEDUP_FLOOR, (
            f"cost schedule only {speedup:.2f}x vs uniform "
            f"(floor {SPEEDUP_FLOOR}x at budget=large, {cpus} cpus)"
        )
    return payload


def test_scheduler_speedup(capsys):
    budget = os.environ.get("REPRO_BENCH_BUDGET", "small")
    payload = run_benchmark(budget)
    with capsys.disabled():
        print(
            "\ncost vs uniform schedule: "
            f"{payload['speedup_cost_vs_uniform']}x "
            f"(budget={payload['budget']}, cpus={payload['cpus']}, "
            f"asserted={payload['asserted']})"
        )


if __name__ == "__main__":
    budget = "large"
    argv = sys.argv[1:]
    if argv[:1] == ["--budget"] and len(argv) > 1:
        budget = argv[1]
    elif argv and argv[0].startswith("--budget="):
        budget = argv[0].split("=", 1)[1]
    print(json.dumps(run_benchmark(budget), indent=2, sort_keys=True))
