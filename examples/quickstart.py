#!/usr/bin/env python3
"""Quickstart: measure how fair two contract-signing protocols are.

The paper's opening question — "which of the two protocols should the
parties use?" — answered by measurement: we attack both protocols with
lock-watching adversaries, fold the fairness events E00/E01/E10/E11 with a
payoff vector ~γ, and place the protocols in the ⪯γ partial order.

Run:  python examples/quickstart.py
"""

from repro.adversaries import LockWatchingAborter, fixed
from repro.analysis import assess_protocol, build_order, format_table
from repro.core import STANDARD_GAMMA, monte_carlo_tolerance
from repro.protocols import CoinOrderedContractSigning, NaiveContractSigning

RUNS = 800


def main() -> None:
    # The attacker may corrupt either party and abort the moment it holds
    # the counterparty's signed contract.
    strategies = [
        fixed("corrupt-p1", lambda: LockWatchingAborter({0})),
        fixed("corrupt-p2", lambda: LockWatchingAborter({1})),
    ]

    print(f"Payoff vector: {STANDARD_GAMMA}")
    print(f"Monte-Carlo budget: {RUNS} runs per strategy\n")

    assessments = []
    rows = []
    for protocol in (NaiveContractSigning(), CoinOrderedContractSigning()):
        assessment = assess_protocol(
            protocol, strategies, STANDARD_GAMMA, RUNS, seed="quickstart"
        )
        assessments.append(assessment)
        best = assessment.best_attack
        events = {
            e.name: f"{p:.2f}" for e, p in best.event_distribution.items() if p
        }
        rows.append([protocol.name, f"{assessment.utility:.4f}", best.adversary, events])

    print(format_table(
        ["protocol", "best-attack utility", "best strategy", "event mix"], rows
    ))
    print()
    order = build_order(assessments, tolerance=monte_carlo_tolerance(RUNS))
    print(order.render())
    print(
        "\nΠ1 concedes the maximum payoff γ10 = "
        f"{STANDARD_GAMMA.gamma10}; the coin toss in Π2 halves the unfair "
        f"branch to (γ10+γ11)/2 = "
        f"{(STANDARD_GAMMA.gamma10 + STANDARD_GAMMA.gamma11) / 2} — "
        "Π2 is twice as fair, exactly as the paper argues."
    )


if __name__ == "__main__":
    main()
