"""Service smoke: concurrent clients, one execution, CLI-identical bytes.

Boots a real ``repro serve`` subprocess on an ephemeral port, fires N
concurrent identical ``verify_claims`` submissions at it, and asserts
the service contract end to end:

1. every client gets the same content-addressed job id, the dedupe
   counter records N-1 hits, and the pool executed exactly once;
2. every client's ``deterministic_payload`` is byte-identical;
3. those bytes equal the ``deterministic_payload`` of the artifact a
   plain serial ``repro verify --json-out`` run writes — the service
   venue changes *where* the work runs, never *what* it computes;
4. the dedupe/rate-limit counters are exported through RunStats.

Writes a JSON artifact (``--out``) recording the counters and payload
hash; exits non-zero with a diagnostic on any violation.  CI runs this
as the ``service-smoke`` job and uploads the artifact.

Usage::

    PYTHONPATH=src python examples/service_smoke.py --out service-smoke.json
"""

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

CLAIMS = "E2,E3"
BUDGET = "small"
SEED = "ci"
N_CLIENTS = 3

REQUEST = {"claims": CLAIMS, "budget": BUDGET, "seed": SEED}


def _env():
    src = str(Path(__file__).resolve().parents[1] / "src")
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def rpc(port, method, params=None, request_id=1, timeout=120):
    body = {"jsonrpc": "2.0", "id": request_id, "method": method}
    if params is not None:
        body["params"] = params
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        reply = json.loads(resp.read())
    if "error" in reply:
        raise AssertionError(f"{method} failed: {reply['error']}")
    return reply["result"]


def canonical_bytes(payload) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def cli_reference_payload(workdir: Path) -> dict:
    """The serial CLI artifact the service must reproduce byte-for-byte."""
    out = workdir / "cli-verify.json"
    subprocess.run(
        [sys.executable, "-m", "repro", "--seed", SEED, "verify",
         "--claims", CLAIMS, "--budget", BUDGET, "--json", str(out)],
        check=True,
        env=_env(),
        stdout=subprocess.DEVNULL,
        timeout=600,
    )
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.analysis.export import deterministic_payload

    return deterministic_payload(json.loads(out.read_text()))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="service-smoke.json",
                        help="artifact path (default service-smoke.json)")
    args = parser.parse_args()

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        print(f"[smoke] serial CLI reference: repro verify --claims {CLAIMS}")
        reference = cli_reference_payload(workdir)

        print("[smoke] booting repro serve --listen 127.0.0.1:0")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            env=_env(),
            text=True,
        )
        try:
            announce = json.loads(proc.stdout.readline())
            assert announce["event"] == "listening", announce
            port = announce["port"]
            print(f"[smoke] listening on 127.0.0.1:{port}")

            submissions, results, errors = [], [], []
            barrier = threading.Barrier(N_CLIENTS)

            def client(i):
                try:
                    barrier.wait(10)
                    sub = rpc(port, "verify_claims", REQUEST, request_id=i)
                    submissions.append(sub)
                    results.append(rpc(
                        port, "job.result",
                        {"job_id": sub["job_id"], "timeout_s": 300},
                        request_id=i,
                    ))
                except Exception as exc:
                    errors.append(f"client {i}: {exc}")

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(N_CLIENTS)]
            t0 = time.monotonic()
            for t in threads:
                t.start()
            for t in threads:
                t.join(600)
            wall = time.monotonic() - t0
            if errors:
                failures.extend(errors)

            stats = rpc(port, "service.stats")
            rpc(port, "service.shutdown", {"drain": True})
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            proc.stdout.close()

        job_ids = {s["job_id"] for s in submissions}
        if len(job_ids) != 1:
            failures.append(f"expected one job id, got {job_ids}")
        if stats.get("executed") != 1:
            failures.append(f"expected exactly 1 execution, got "
                            f"{stats.get('executed')}")
        if stats.get("dedup_hits") != N_CLIENTS - 1:
            failures.append(f"expected {N_CLIENTS - 1} dedup hits, got "
                            f"{stats.get('dedup_hits')}")

        digests = {
            hashlib.sha256(
                canonical_bytes(r["deterministic_payload"])
            ).hexdigest()
            for r in results
        }
        if len(digests) != 1:
            failures.append(f"payloads differ across clients: {digests}")

        reference_digest = hashlib.sha256(
            canonical_bytes(reference)
        ).hexdigest()
        if digests and digests != {reference_digest}:
            failures.append(
                "service payload differs from serial CLI artifact: "
                f"{digests} != {reference_digest}"
            )

        run_stats = results[0]["run_stats"] if results else []
        if not run_stats or "service_dedup_hits" not in run_stats[-1]:
            failures.append("service counters missing from RunStats export")

        artifact = {
            "request": REQUEST,
            "clients": N_CLIENTS,
            "wall_clock_s": wall,
            "job_id": sorted(job_ids),
            "service_stats": stats,
            "payload_sha256": sorted(digests),
            "cli_payload_sha256": reference_digest,
            "payload_matches_cli": digests == {reference_digest},
            "run_stats_service_counters": (
                {
                    "service_dedup_hits":
                        run_stats[-1].get("service_dedup_hits"),
                    "service_rate_limited":
                        run_stats[-1].get("service_rate_limited"),
                }
                if run_stats else None
            ),
            "failures": failures,
        }
        Path(args.out).write_text(json.dumps(artifact, indent=2,
                                             sort_keys=True))
        print(f"[smoke] artifact written: {args.out}")

    if failures:
        for failure in failures:
            print(f"[smoke] FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"[smoke] ok: {N_CLIENTS} clients, 1 execution, "
          f"{stats['dedup_hits']} dedup hits, payload == CLI "
          f"({reference_digest[:12]}…)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
