#!/usr/bin/env python3
"""The millionaires' problem, bottom to top.

Three ways to run [x1 > x2] and what each concedes to an attacker:

1. raw GMW over the comparison circuit — correct, but the rushing
   adversary always steals the output and aborts (utility γ10);
2. ΠOpt2SFE on the same function — the optimum (γ10 + γ11)/2;
3. the Gordon–Katz 1/p protocol — utility ≤ 1/p, available here because
   the domain is polynomial (unlike swap).

Run:  python examples/millionaires_gmw.py
"""

from repro.adversaries import (
    KnownOutputStopper,
    LockWatchingAborter,
    PassiveAdversary,
    fixed,
)
from repro.analysis import estimate_utility, format_table, gk_e10_probability
from repro.core import PARTIAL_FAIRNESS_GAMMA, STANDARD_GAMMA
from repro.crypto import Rng
from repro.circuits import millionaires_circuit
from repro.engine import run_execution
from repro.functions import make_millionaires
from repro.gmw import GmwProtocol
from repro.protocols import GordonKatzProtocol, Opt2SfeProtocol

BITS = 4
RUNS = 400


def main() -> None:
    spec = make_millionaires(BITS)
    gmw = GmwProtocol(millionaires_circuit(BITS), [BITS, BITS], spec)

    # Sanity: GMW computes the comparison correctly.
    result = run_execution(gmw, (11, 7), PassiveAdversary(), Rng("demo"))
    print(
        f"GMW over {len(gmw.circuit)} gates: is 11 > 7?  ->  "
        f"{bool(result.outputs[0].value)}  "
        f"({result.rounds_used} rounds, "
        f"{len(gmw.build_functionalities(Rng(0)))} OT instances)\n"
    )

    lock0 = fixed("lock-watch[p1]", lambda: LockWatchingAborter({0}))
    rows = []

    est = estimate_utility(gmw, lock0, STANDARD_GAMMA, RUNS, seed="m1")
    rows.append(["raw GMW", f"{est.mean:.3f}", "γ10 — totally unfair"])

    opt = Opt2SfeProtocol(spec)
    est = estimate_utility(opt, lock0, STANDARD_GAMMA, RUNS, seed="m2")
    rows.append(
        ["ΠOpt2SFE", f"{est.mean:.3f}", "(γ10+γ11)/2 — the general optimum"]
    )

    for p in (2, 4):
        gk = GordonKatzProtocol(spec, p=p)
        prob = gk_e10_probability(
            gk,
            lambda: KnownOutputStopper(0, known_output=1),
            (11, 7),
            n_runs=RUNS,
            seed=f"m3-{p}",
        )
        rows.append(
            [
                f"Gordon–Katz p={p} ({gk.reveal_rounds} rounds)",
                f"{prob:.3f}",
                f"≤ 1/p = {1/p} — buys fairness with rounds",
            ]
        )

    print(
        format_table(
            ["protocol", "best-attack utility*", "paper prediction"], rows
        )
    )
    print(
        "\n* utilities under γ = (0,0,1,0.5) for the first two rows and "
        "γ = (0,0,1,0) (pure unfairness probability) for the GK rows."
    )
    print(
        "\nThe trade-off the paper formalises: for *arbitrary* functions "
        "(exponential domains) no protocol beats (γ10+γ11)/2, but "
        "poly-domain functions like this one can push unfairness down to "
        "any 1/p at the price of O(p·|domain|) rounds."
    )


if __name__ == "__main__":
    main()
