#!/usr/bin/env python3
"""Utility-based fairness vs 1/p-security (paper §5), executed.

Two demonstrations:

1. **Theorem 23** — the Gordon–Katz protocol realizes the randomized-abort
   functionality Fsfe$: we run its explicit simulator and show the real and
   ideal outcome distributions coincide, while the unfair event stays under
   1/p.
2. **Lemmas 26/27** — the leaky protocol Π̃ passes both conditions of
   1/p-security (we simulate its corrupted view perfectly), yet the Z1/Z2
   distinguishers certify it realizes no Fsfe$ simulator: 1/p-security is
   strictly weaker than utility-based fairness.

Run:  python examples/partial_fairness_demo.py
"""

from repro.adversaries import FixedRoundStopper, KnownOutputStopper
from repro.analysis import (
    format_table,
    gk_e10_probability,
    gk_realization_distance,
    leaky_distinguisher_probabilities,
    leaky_ideal_bound_violated,
    leaky_privacy_distance,
)
from repro.functions import make_and
from repro.protocols import GordonKatzProtocol

RUNS = 600


def gordon_katz_demo() -> None:
    print("— Theorem 23: GK realizes Fsfe$ —\n")
    rows = []
    for p in (2, 4):
        protocol = GordonKatzProtocol(make_and(), p=p)
        stopper = lambda: KnownOutputStopper(0, known_output=1)
        distance = gk_realization_distance(
            protocol, stopper, (1, 1), n_runs=RUNS, seed=f"pf-{p}"
        )
        e10 = gk_e10_probability(
            protocol, stopper, (1, 1), n_runs=RUNS, seed=f"pe-{p}"
        )
        rows.append(
            [
                f"p={p}",
                protocol.reveal_rounds,
                f"{distance:.3f}",
                f"{e10:.3f}",
                f"{1/p:.3f}",
            ]
        )
    print(
        format_table(
            [
                "parameter",
                "rounds",
                "real-vs-ideal distance",
                "Pr[unfair E10]",
                "1/p budget",
            ],
            rows,
        )
    )
    print(
        "\nThe distance is Monte-Carlo noise: the explicit simulator "
        "reproduces the adversary's view and the honest outcome exactly, "
        "and the unfair event stays inside the 1/p budget.\n"
    )


def leaky_demo() -> None:
    print("— Lemmas 26/27: the separating protocol Π̃ —\n")
    p_z1, p_z2 = leaky_distinguisher_probabilities(n_runs=2 * RUNS, seed="z")
    privacy = leaky_privacy_distance(n_runs=RUNS, seed="priv")
    print(f"  Pr[input leaked to corrupted p2]      = {p_z2:.3f}  (by design 1/4)")
    print(f"  privacy-simulator view distance       = {privacy:.3f}  (Π̃ IS private per [18])")
    print(f"  Pr[Z1 = 1] = {p_z1:.3f},  Pr[Z2 = 1] = {p_z2:.3f}")
    print(
        "  any Fsfe$ simulator must keep Pr[Z1] ≤ ¾·Pr[Z2] = "
        f"{0.75 * p_z2:.3f} — violated: "
        f"{leaky_ideal_bound_violated(p_z1, p_z2, 0.03)}"
    )
    print(
        "\nΠ̃ hands p1's private input to a deviating p2 a quarter of the "
        "time, yet satisfies both 1/2-security and full privacy as defined "
        "in [18] — the two conditions quantify over *separate* simulators. "
        "The utility-based definition catches it, which is the paper's "
        "strengthening of the Gordon–Katz result."
    )


def main() -> None:
    gordon_katz_demo()
    leaky_demo()


if __name__ == "__main__":
    main()
