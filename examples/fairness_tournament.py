#!/usr/bin/env python3
"""Fairness tournament: place the whole two-party protocol zoo in the
⪯γ partial order, across several payoff vectors.

This is Definition 1/2 used as a *tool*: given arbitrary protocols for the
same task, measure each one's best attacker and rank them.  The ideal
dummy protocol ΦFsfe is included as the unreachable reference point.

Run:  python examples/fairness_tournament.py
"""

from repro.adversaries import strategy_space_for_protocol
from repro.analysis import assess_protocol, build_order, format_table
from repro.core import PayoffVector, STANDARD_GAMMA, monte_carlo_tolerance
from repro.functions import make_contract_exchange, make_swap
from repro.protocols import (
    CoinOrderedContractSigning,
    DummyProtocol,
    NaiveContractSigning,
    Opt2SfeProtocol,
    SingleRoundProtocol,
)

RUNS = 300

GAMMAS = {
    "standard (γ10=1, γ11=0.5)": STANDARD_GAMMA,
    "pure-unfairness (γ10=1, rest 0)": PayoffVector(0.0, 0.0, 1.0, 0.0),
    "grudging (γ00=0.25, γ10=2, γ11=0.75)": PayoffVector(0.25, 0.0, 2.0, 0.75),
}


def build_zoo():
    swap = make_swap(16)
    contract = make_contract_exchange(16)
    return [
        DummyProtocol(swap),
        Opt2SfeProtocol(swap),
        CoinOrderedContractSigning(contract),
        NaiveContractSigning(contract),
        SingleRoundProtocol(swap),
    ]


def main() -> None:
    for label, gamma in GAMMAS.items():
        print(f"\n=== payoff vector: {label} ===\n")
        assessments = []
        rows = []
        for protocol in build_zoo():
            space = strategy_space_for_protocol(protocol)
            assessment = assess_protocol(
                protocol, space, gamma, RUNS, seed=("tournament", protocol.name)
            )
            assessments.append(assessment)
            rows.append(
                [
                    protocol.name,
                    f"{assessment.utility:.4f}",
                    assessment.best_attack.adversary,
                    len(space),
                ]
            )
        rows.sort(key=lambda r: float(r[1]))
        print(
            format_table(
                ["protocol", "sup utility", "best strategy", "|strategy space|"],
                rows,
            )
        )
        order = build_order(
            assessments, tolerance=monte_carlo_tolerance(RUNS, spread=gamma.gamma10)
        )
        print()
        print(order.render())


if __name__ == "__main__":
    main()
