#!/usr/bin/env python3
"""Fairness tournament: place the whole two-party protocol zoo in the
⪯γ partial order, across several payoff vectors.

This is Definition 1/2 used as a *tool*: given arbitrary protocols for the
same task, measure each one's best attacker and rank them.  The ideal
dummy protocol ΦFsfe is included as the unreachable reference point.

The sweep doubles as a demo of the parallel Monte-Carlo runtime: pass
``--jobs N`` (or set ``REPRO_JOBS``) to fan each assessment's
strategies × chunks out over worker processes — the rankings are
bit-identical to the serial run, and the measured speedup is printed.
Pass ``--fault-rate 0.3`` to watch the fault-tolerant runtime at work:
chunks fail deterministically, get retried (and degraded to in-process
replay when ``--max-retries`` is exhausted), and the rankings still come
out bit-identical — the recovery counters are printed at the end.

Run:  python examples/fairness_tournament.py [--runs 300] [--jobs 4]
                                             [--fault-rate 0.3]
"""

import argparse
import time
from dataclasses import replace

from repro.adversaries import strategy_space_for_protocol
from repro.analysis import assess_protocol, build_order, format_table
from repro.core import PayoffVector, STANDARD_GAMMA, monte_carlo_tolerance
from repro.functions import make_contract_exchange, make_swap
from repro.protocols import (
    CoinOrderedContractSigning,
    DummyProtocol,
    NaiveContractSigning,
    Opt2SfeProtocol,
    SingleRoundProtocol,
)
from repro.runtime import (
    FaultSpec,
    RetryPolicy,
    SerialRunner,
    resolve_jobs,
    resolve_runner,
)

GAMMAS = {
    "standard (γ10=1, γ11=0.5)": STANDARD_GAMMA,
    "pure-unfairness (γ10=1, rest 0)": PayoffVector(0.0, 0.0, 1.0, 0.0),
    "grudging (γ00=0.25, γ10=2, γ11=0.75)": PayoffVector(0.25, 0.0, 2.0, 0.75),
}


def build_zoo():
    swap = make_swap(16)
    contract = make_contract_exchange(16)
    return [
        DummyProtocol(swap),
        Opt2SfeProtocol(swap),
        CoinOrderedContractSigning(contract),
        NaiveContractSigning(contract),
        SingleRoundProtocol(swap),
    ]


def run_tournament(runs: int, runner) -> int:
    """Print the tournament; return the number of executions performed."""
    executions = 0
    for label, gamma in GAMMAS.items():
        print(f"\n=== payoff vector: {label} ===\n")
        assessments = []
        rows = []
        for protocol in build_zoo():
            space = strategy_space_for_protocol(protocol)
            assessment = assess_protocol(
                protocol,
                space,
                gamma,
                runs,
                seed=("tournament", protocol.name),
                runner=runner,
            )
            executions += runner.last_stats.executions
            assessments.append(assessment)
            rows.append(
                [
                    protocol.name,
                    f"{assessment.utility:.4f}",
                    assessment.best_attack.adversary,
                    len(space),
                ]
            )
        rows.sort(key=lambda r: float(r[1]))
        print(
            format_table(
                ["protocol", "sup utility", "best strategy", "|strategy space|"],
                rows,
            )
        )
        order = build_order(
            assessments, tolerance=monte_carlo_tolerance(runs, spread=gamma.gamma10)
        )
        print()
        print(order.render())
    return executions


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=300, help="Monte-Carlo runs")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: $REPRO_JOBS or 1; 0 = all CPUs)",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="inject deterministic chunk failures at this rate to "
        "demonstrate the recovery path (results stay bit-identical)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="in-pool retries per failed chunk before in-process replay "
        "(default: $REPRO_MAX_RETRIES or 2)",
    )
    args = parser.parse_args()

    jobs = resolve_jobs(args.jobs)
    retry = RetryPolicy.from_env()
    if args.max_retries is not None:
        retry = replace(retry, max_retries=max(0, args.max_retries))
    fault = (
        FaultSpec(rate=min(args.fault_rate, 1.0), seed="tournament-faults")
        if args.fault_rate > 0
        else None
    )
    runner = resolve_runner(args.jobs, retry=retry, fault=fault)
    t0 = time.perf_counter()
    executions = run_tournament(args.runs, runner)
    elapsed = time.perf_counter() - t0
    print(
        f"\n[runtime] {executions} executions in {elapsed:.1f}s "
        f"({executions / elapsed:.0f}/s, jobs={jobs})"
    )

    failed = sum(s.failed_attempts for s in runner.stats_history)
    if failed:
        retries = sum(s.retries for s in runner.stats_history)
        replays = sum(s.serial_replays for s in runner.stats_history)
        timeouts = sum(s.timeouts for s in runner.stats_history)
        print(
            f"[runtime] fault tolerance: {failed} failed chunk attempts "
            f"absorbed ({retries} in-pool retries, {timeouts} timeouts, "
            f"{replays} in-process replays) — results unchanged"
        )

    if jobs > 1:
        # Measure the speedup on one representative assessment.
        protocol = Opt2SfeProtocol(make_swap(16))
        space = strategy_space_for_protocol(protocol)
        serial = SerialRunner()
        t0 = time.perf_counter()
        assess_protocol(
            protocol, space, STANDARD_GAMMA, args.runs, seed="speedup", runner=serial
        )
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        assess_protocol(
            protocol, space, STANDARD_GAMMA, args.runs, seed="speedup", runner=runner
        )
        parallel_s = time.perf_counter() - t0
        print(
            f"[runtime] {protocol.name} assessment: serial {serial_s:.2f}s vs "
            f"jobs={jobs} {parallel_s:.2f}s → {serial_s / parallel_s:.2f}x speedup"
        )


if __name__ == "__main__":
    main()
