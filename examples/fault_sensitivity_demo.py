#!/usr/bin/env python3
"""How fair is your protocol on an unreliable network?

The paper proves its utility bounds over lossless synchronous channels.
This demo re-runs the sup-over-adversaries measurement of ΠOpt2SFE under
engine-level fault injection (`repro.engine.faults`): bilateral channels
that drop and delay messages, and honest parties that crash-stop at
random rounds.  The resulting *erosion curve* shows the attacker's
utility falling as the network degrades — its edge comes from precisely
timed aborts, and random faults pre-empt the timing — while honest
parties gracefully degrade to their protocols' default-output paths
instead of hanging.

Run:  python examples/fault_sensitivity_demo.py
"""

from repro.adversaries import strategy_space_for_protocol
from repro.analysis import fault_sensitivity, format_table, save_json
from repro.core import FairnessEvent, PayoffVector
from repro.functions import make_swap
from repro.protocols import Opt2SfeProtocol

RUNS = 120
GAMMA = PayoffVector(0.0, 0.0, 1.0, 0.5)


def main() -> None:
    protocol = Opt2SfeProtocol(make_swap(16))
    space = strategy_space_for_protocol(protocol)

    curve = fault_sensitivity(
        protocol,
        space,
        GAMMA,
        loss_rates=(0.0, 0.1, 0.3),
        crash_rates=(0.0, 0.2),
        n_runs=RUNS,
        seed="demo",
        fault_seed="demo-faults",
    )

    print(f"{protocol.name}: {len(space)} strategies per grid point, "
          f"{RUNS} runs each\n")
    rows = []
    for point in curve.points:
        erosion = curve.erosion(point)
        rows.append(
            [
                f"{point.loss:.2f}",
                f"{point.crash_rate:.2f}",
                f"{point.utility:.4f}",
                f"{point.event_frequency(FairnessEvent.E11):.3f}",
                f"{point.hung_fraction:.3f}",
                f"{erosion:+.4f}" if erosion is not None else "n/a",
                point.estimate.adversary,
            ]
        )
    print(
        format_table(
            ["loss", "crash", "sup utility", "E11", "hung", "erosion",
             "best attack"],
            rows,
        )
    )

    out = save_json(curve, "fault_sensitivity_demo.json")
    print(f"\nartifact (with full fault config + per-strategy estimates): "
          f"{out}")
    print("Both fault axes erode the attacker's utility: unreliable "
          "networks hurt the attacker before they hurt fairness.")


if __name__ == "__main__":
    main()
