#!/usr/bin/env python3
"""Multi-party scenario: a sealed-bid auction among n bidders.

The bidders jointly compute the winning bid (a global-output function)
with ΠOptnSFE.  We measure the fairness profile against coalitions of every
size t — the Lemma-11 curve (t·γ10 + (n−t)·γ11)/n — then derive the
corruption-cost function under which the protocol is *ideally* fair
(Theorem 6): the premium an attacker would have to pay per corrupted
bidder to make cheating pointless.

Run:  python examples/sealed_bid_auction.py
"""

from repro.adversaries import LockWatchingAborter, fixed
from repro.analysis import balance_profile, format_table, u_opt_nsfe
from repro.core import (
    STANDARD_GAMMA,
    balanced_sum_bound,
    check_ideal_fairness,
    is_utility_balanced,
    monte_carlo_tolerance,
    optimal_cost_from_profile,
)
from repro.functions import make_global
from repro.protocols import OptNSfeProtocol

N = 5
BID_RANGE = tuple(range(16))
RUNS = 500


def make_auction_spec():
    """Global output: (winning index, winning bid)."""

    def winner(bids):
        best = max(range(N), key=lambda i: bids[i])
        return (best << 8) | bids[best]

    return make_global(
        "sealed-bid-auction",
        N,
        winner,
        tuple(BID_RANGE for _ in range(N)),
        output_bits=16,
    )


def main() -> None:
    spec = make_auction_spec()
    protocol = OptNSfeProtocol(spec)
    gamma = STANDARD_GAMMA
    print(f"Auction: {N} bidders, bids in {BID_RANGE[0]}..{BID_RANGE[-1]}")
    print(f"Protocol: {protocol.name};  {gamma}\n")

    factories_per_t = {
        t: [
            fixed(
                f"coalition-{t}",
                lambda t=t: LockWatchingAborter(set(range(t))),
            )
        ]
        for t in range(1, N)
    }
    profile = balance_profile(
        protocol, factories_per_t, gamma, n_runs=RUNS, seed="auction"
    )
    cost = optimal_cost_from_profile(profile)

    rows = []
    for t in range(1, N):
        rows.append(
            [
                t,
                f"{profile.per_t[t].mean:.4f}",
                f"{u_opt_nsfe(gamma, N, t):.4f}",
                f"{cost(t):.4f}",
            ]
        )
    print(
        format_table(
            [
                "coalition size t",
                "measured u(Π, A_t)",
                "Lemma-11 value",
                "ideal corruption cost c(t)",
            ],
            rows,
        )
    )

    tol = (N - 1) * monte_carlo_tolerance(RUNS)
    print(
        f"\nΣ_t u(Π, A_t) = {profile.utility_sum:.4f}"
        f"  (balanced optimum {balanced_sum_bound(N, gamma):.4f})"
    )
    print(f"utility-balanced: {is_utility_balanced(profile, tol=tol)}")
    check = check_ideal_fairness(profile, cost, tol=tol)
    print(
        "with cost c(t) charged per corruption, the protocol is ideally "
        f"γC-fair: {check.holds(tol=tol)}"
    )
    print(
        "\nReading: bribing t bidders buys an expected advantage of "
        "c(t) payoff units over honest participation — Theorem 6 says no "
        "protocol can make corruption cheaper at every t."
    )


if __name__ == "__main__":
    main()
