#!/usr/bin/env python3
"""The RPD attack game, played out (paper §2, Remark 2).

Rational Protocol Design casts security as a zero-sum game: the designer
commits to a protocol; the attacker, seeing it, best-responds.  We measure
the full utility matrix over the two-party zoo × the strategy space and
solve the game — its minimax solution is exactly the optimally fair
protocol of Definition 2, and designer mixing provably cannot help (the
attacker moves second).

Run:  python examples/attack_game_demo.py
"""

from repro.adversaries import strategy_space_for_protocol
from repro.analysis import format_table, sweep_strategies
from repro.core import STANDARD_GAMMA, game_from_estimates
from repro.functions import make_contract_exchange, make_swap
from repro.protocols import (
    CoinOrderedContractSigning,
    NaiveContractSigning,
    Opt2SfeProtocol,
    SingleRoundProtocol,
)

RUNS = 250


def main() -> None:
    swap = make_swap(16)
    protocols = [
        Opt2SfeProtocol(swap),
        CoinOrderedContractSigning(make_contract_exchange(16)),
        NaiveContractSigning(make_contract_exchange(16)),
        SingleRoundProtocol(swap),
    ]

    estimates = []
    for protocol in protocols:
        space = strategy_space_for_protocol(protocol)
        estimates.extend(
            sweep_strategies(
                protocol, space, STANDARD_GAMMA, RUNS, seed=("game", protocol.name)
            )
        )
    game = game_from_estimates(STANDARD_GAMMA, estimates)

    print("Designer's move set and the attacker's best responses:\n")
    print(
        format_table(
            ["protocol (designer move)", "attacker best response", "utility"],
            game.as_rows(),
        )
    )
    print(f"\ngame value (minimax): {game.game_value():.4f}")
    print(f"designer optima: {', '.join(game.minimax_protocols(tol=0.05))}")

    uniform = {p.name: 1 / len(protocols) for p in protocols}
    print(
        f"\nuniform designer mixture concedes {game.mixture_value(uniform):.4f}"
        " — mixing cannot beat the pure minimax choice, because the"
        " attacker observes the protocol before moving."
    )
    print(
        "\nThe minimax solution is ΠOpt2SFE at value (γ10+γ11)/2 = 0.75:"
        " Definition 2's optimally fair protocol is exactly the attack"
        " game's equilibrium protocol, as Remark 2 observes."
    )


if __name__ == "__main__":
    main()
