#!/usr/bin/env python3
"""Tooling walkthrough: dissect one attacked execution end to end.

Runs the paper's headline attack (a lock-watching adversary against
ΠOpt2SFE), renders the full transcript, classifies the fairness event,
measures the protocol's cost profile, and exports the assessment to JSON —
the workflow for debugging a new protocol or attack.

Run:  python examples/inspect_execution.py
"""

import json
import tempfile
from pathlib import Path

from repro.adversaries import LockWatchingAborter, fixed
from repro.analysis import (
    assess_protocol,
    measure_cost,
    save_json,
)
from repro.core import STANDARD_GAMMA, classify
from repro.crypto import Rng
from repro.engine import run_execution
from repro.engine.trace import render_transcript
from repro.functions import make_swap
from repro.protocols import Opt2SfeProtocol


def main() -> None:
    protocol = Opt2SfeProtocol(make_swap(16))
    inputs = (1234, 5678)

    # Hunt for a seed where the order coin favours the adversary, so the
    # transcript shows the unfair (E10) branch.
    for k in range(50):
        adversary = LockWatchingAborter({0})
        result = run_execution(protocol, inputs, adversary, Rng(("demo", k)))
        event = classify(result, protocol.func)
        if event.name == "E10":
            break

    print("=== transcript of an unfair execution ===\n")
    print(render_transcript(result))
    print(f"\nfairness event: {event.name} "
          "(the adversary learned; the honest party got ⊥)")
    print(
        "note round 1: the honest party opened towards the corrupted first "
        "receiver î — which the adversary's rushing probe detected before "
        "withholding its own opening."
    )

    cost = measure_cost(protocol, n_runs=10, seed="demo")
    print(
        f"\ncost profile: {cost.rounds:.0f} rounds, "
        f"{cost.point_to_point_messages:.0f} p2p messages, "
        f"{cost.functionality_responses:.0f} hybrid responses per execution"
    )

    assessment = assess_protocol(
        protocol,
        [
            fixed("lock-watch[0]", lambda: LockWatchingAborter({0})),
            fixed("lock-watch[1]", lambda: LockWatchingAborter({1})),
        ],
        STANDARD_GAMMA,
        n_runs=400,
        seed="demo",
    )
    path = Path(tempfile.gettempdir()) / "opt2sfe_assessment.json"
    save_json(assessment, path)
    print(f"\nassessment exported to {path}:")
    print(json.dumps(json.loads(path.read_text()), indent=2)[:400] + " …")


if __name__ == "__main__":
    main()
